"""The million-user out-of-core recipe, end to end, with memory accounting.

``python -m repro.experiments.scale`` drives the full streamed dataset path —
blocked trace generation → chunked dedup/filter → blocked split → BPRMF
training on the shard-blocked sampler → sharded ranking evaluation — and
prints one JSON object with per-phase wall times, RSS snapshots, and the
process peak RSS (``ru_maxrss``).

The benchmark (`benchmarks/test_bench_scale.py`) runs this module in a
*subprocess* so the reported ``ru_maxrss`` is the high-water mark of exactly
this pipeline, not of whatever the host process touched earlier.  For the
same reason evaluation runs in-process on the
:class:`~repro.parallel.executor.SerialExecutor` — farming shards to worker
processes would move their memory out of the measured budget.

The OOI-style catalog is reused with the site count scaled up: the paper's
facilities serve a few thousand distinct data streams to ~10⁵–10⁶ users, so
scale lives in the *user* dimension while the item space stays catalog-sized
— exactly the regime where the monolithic mixture fan-out (M×N float64) is
hopeless and the streamed path is not.
"""

from __future__ import annotations

import argparse
import json
import resource
import time
from typing import Optional

from repro.data.sampling import ShardedBPRSampler
from repro.data.streaming import blocked_per_user_split, streamed_trace_to_interactions
from repro.eval.evaluator import RankingEvaluator
from repro.eval.sharded import sharded_evaluate
from repro.facility.affinity import OOI_AFFINITY
from repro.facility.ooi import OOIConfig, build_ooi_catalog
from repro.facility.stream import load_trace_stream, stream_trace
from repro.facility.users import build_user_population
from repro.models.base import FitConfig
from repro.models.bprmf import BPRMF
from repro.store import ArtifactStore, resolve_cache_dir

__all__ = ["run_scale_pipeline", "monolithic_lower_bound_bytes", "main"]


def peak_rss_mb() -> float:
    """Process peak resident set size in MB (``ru_maxrss`` is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def monolithic_lower_bound_bytes(num_users: int, num_objects: int, num_records: int) -> int:
    """Bytes the monolithic trace path *must* allocate at peak.

    ``TraceGenerator.generate`` fans the mixture rows out to an (M, N)
    float64 matrix and holds the three full trace arrays (two int64, one
    float64) simultaneously; everything else (sort scratch, dedup keys) only
    adds to this.  The bound is arithmetic, not measured — at 10⁶ users it
    is tens of GB, which is precisely why the streamed path exists.
    """
    mixtures = int(num_users) * int(num_objects) * 8
    trace_arrays = 3 * int(num_records) * 8
    return mixtures + trace_arrays


def run_scale_pipeline(
    num_users: int = 1_000_000,
    num_orgs: int = 5_000,
    num_cities: int = 400,
    num_sites: int = 220,
    queries_per_user_mean: float = 18.0,
    lognormal_sigma: float = 1.2,
    min_user_interactions: int = 3,
    min_item_interactions: int = 1,
    train_fraction: float = 0.8,
    block_size: int = 4096,
    users_per_shard: int = 8192,
    dim: int = 16,
    batch_size: int = 8192,
    epochs: int = 1,
    lr: float = 0.05,
    eval_users: int = 20_000,
    num_eval_shards: int = 8,
    cache_dir: Optional[str] = None,
    seed: int = 7,
) -> dict:
    """Run build → train → eval on the streamed path; return a stats dict."""
    phases = {}
    t_start = time.perf_counter()

    def mark(name: str, t0: float, **extra) -> None:
        phases[name] = {
            "seconds": round(time.perf_counter() - t0, 3),
            "peak_rss_mb": round(peak_rss_mb(), 1),
            **extra,
        }

    root = resolve_cache_dir(cache_dir)
    store = ArtifactStore(root) if root is not None else None

    t0 = time.perf_counter()
    catalog = build_ooi_catalog(OOIConfig(num_sites=num_sites), seed=seed)
    population = build_user_population(
        catalog, num_users=num_users, num_orgs=num_orgs, num_cities=num_cities, seed=seed + 1
    )
    mark("facility", t0, num_objects=catalog.num_objects, num_users=num_users)

    recipe = {
        "experiment": "scale",
        "num_users": num_users,
        "num_orgs": num_orgs,
        "num_cities": num_cities,
        "num_sites": num_sites,
        "queries_per_user_mean": queries_per_user_mean,
        "lognormal_sigma": lognormal_sigma,
        "seed": seed,
    }
    t0 = time.perf_counter()
    reader = None
    warm = False
    if store is not None:
        reader = load_trace_stream(store, recipe, block_size)
        warm = reader is not None
    if reader is None:
        reader = stream_trace(
            catalog,
            population,
            OOI_AFFINITY,
            seed=seed,
            queries_per_user_mean=queries_per_user_mean,
            lognormal_sigma=lognormal_sigma,
            block_size=block_size,
            store=store,
            recipe=recipe if store is not None else None,
        )
    mark(
        "trace_stream",
        t0,
        num_records=reader.num_records,
        num_blocks=reader.num_blocks,
        warm=warm,
    )

    t0 = time.perf_counter()
    interactions = streamed_trace_to_interactions(
        reader,
        min_user_interactions=min_user_interactions,
        min_item_interactions=min_item_interactions,
    )
    mark("interactions", t0, num_interactions=len(interactions))

    t0 = time.perf_counter()
    split = blocked_per_user_split(interactions, train_fraction=train_fraction, seed=seed + 2)
    mark("split", t0, train=len(split.train), test=len(split.test))

    t0 = time.perf_counter()
    model = BPRMF(interactions.num_users, interactions.num_items, dim=dim, seed=seed + 3)
    sampler = ShardedBPRSampler(split.train, users_per_shard=users_per_shard)
    fit = model.fit(
        split.train,
        FitConfig(epochs=epochs, batch_size=batch_size, lr=lr, seed=seed + 4),
        sampler=sampler,
    )
    mark("train", t0, final_loss=round(fit.losses[-1], 6), num_shards=sampler.num_shards)

    t0 = time.perf_counter()
    evaluator = RankingEvaluator(split.train, split.test, k=20, user_batch=512)
    users = evaluator.eval_users[: min(eval_users, len(evaluator.eval_users))]
    result = sharded_evaluate(
        evaluator, model.score_users, num_shards=num_eval_shards, users=users
    )
    metrics = {k: round(v, 6) for k, v in result.as_dict().items()}
    mark("eval", t0, users=len(users), **metrics)

    return {
        "recipe": recipe,
        "block_size": block_size,
        "users_per_shard": users_per_shard,
        "dim": dim,
        "batch_size": batch_size,
        "epochs": epochs,
        "num_objects": catalog.num_objects,
        "num_records": reader.num_records,
        "num_interactions": len(interactions),
        "phases": phases,
        "total_seconds": round(time.perf_counter() - t_start, 3),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "monolithic_lower_bound_mb": round(
            monolithic_lower_bound_bytes(num_users, catalog.num_objects, reader.num_records)
            / 2**20,
            1,
        ),
        "metrics": metrics,
    }


def main(argv=None) -> None:
    """CLI entry point: run the streamed pipeline and print the stats JSON."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--num-users", type=int, default=1_000_000)
    parser.add_argument("--num-orgs", type=int, default=5_000)
    parser.add_argument("--num-cities", type=int, default=400)
    parser.add_argument("--num-sites", type=int, default=220)
    parser.add_argument("--queries-per-user", type=float, default=18.0)
    parser.add_argument("--min-user", type=int, default=3)
    parser.add_argument("--min-item", type=int, default=1)
    parser.add_argument("--block-size", type=int, default=4096)
    parser.add_argument("--users-per-shard", type=int, default=8192)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=8192)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--eval-users", type=int, default=20_000)
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    stats = run_scale_pipeline(
        num_users=args.num_users,
        num_orgs=args.num_orgs,
        num_cities=args.num_cities,
        num_sites=args.num_sites,
        queries_per_user_mean=args.queries_per_user,
        min_user_interactions=args.min_user,
        min_item_interactions=args.min_item,
        block_size=args.block_size,
        users_per_shard=args.users_per_shard,
        dim=args.dim,
        batch_size=args.batch_size,
        epochs=args.epochs,
        eval_users=args.eval_users,
        cache_dir=args.cache_dir,
        seed=args.seed,
    )
    print(json.dumps(stats))


if __name__ == "__main__":
    main()
