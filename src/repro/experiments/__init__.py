"""Experiment harness: regenerates every table and figure of Section VI.

- :mod:`~repro.experiments.datasets` — the two benchmark datasets (OOI-like,
  GAGE-like) as reproducible bundles;
- :mod:`~repro.experiments.runner` — model registry, training budgets, and
  the train→evaluate pipeline;
- :mod:`~repro.experiments.tables` — Tables I–V;
- :mod:`~repro.experiments.figures` — Figures 3–5.

Each harness returns structured results *and* renders a paper-shaped text
table, so benches can both assert on the shape and print paper-vs-measured.
"""

from repro.experiments import figures, tables
from repro.experiments.coldstart import cold_start_report, slice_users_by_history
from repro.experiments.datasets import BenchmarkDataset, load_dataset
from repro.experiments.gridsearch import GridSearchResult, grid_search
from repro.experiments.runner import (
    MODEL_NAMES,
    CellSpec,
    build_model,
    default_fit_config,
    run_cell,
    run_cells,
    run_single_model,
)

__all__ = [
    "BenchmarkDataset",
    "load_dataset",
    "MODEL_NAMES",
    "CellSpec",
    "build_model",
    "default_fit_config",
    "run_cell",
    "run_cells",
    "run_single_model",
    "tables",
    "figures",
    "grid_search",
    "GridSearchResult",
    "cold_start_report",
    "slice_users_by_history",
]
