"""Harnesses regenerating the paper's Tables I–V.

Every ``tableN`` function runs the corresponding experiment and returns a
``(results, rendered_text)`` pair; the rendered table has the same rows as
the paper plus the paper's published numbers alongside, so the shape —
which model wins, which knowledge combination is best, whether attention /
concat / depth help — can be compared directly.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Tuple, Union


from repro.experiments.datasets import BenchmarkDataset, load_dataset
from repro.experiments.runner import (
    MODEL_NAMES,
    CellSpec,
    RunResult,
    run_cells,
    run_single_model,
)
from repro.kg.stats import CKGStats, compute_stats, render_table1
from repro.kg.subgraphs import KnowledgeSources
from repro.models.ckat import CKATConfig
from repro.utils.tables import TextTable

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]

# ------------------------------------------------------------ paper values
PAPER_TABLE2: Dict[str, Dict[str, Tuple[float, float]]] = {
    # model: {dataset: (recall@20, ndcg@20)}
    "BPRMF": {"ooi": (0.1935, 0.1693), "gage": (0.2742, 0.2115)},
    "FM": {"ooi": (0.2353, 0.2228), "gage": (0.3174, 0.2356)},
    "NFM": {"ooi": (0.2339, 0.2211), "gage": (0.3289, 0.2471)},
    "CKE": {"ooi": (0.2102, 0.2197), "gage": (0.2675, 0.2106)},
    "CFKG": {"ooi": (0.2283, 0.2241), "gage": (0.2572, 0.2096)},
    "RippleNet": {"ooi": (0.2833, 0.2394), "gage": (0.3584, 0.2981)},
    "KGCN": {"ooi": (0.3020, 0.2414), "gage": (0.3767, 0.3106)},
    "CKAT": {"ooi": (0.3217, 0.2561), "gage": (0.4062, 0.3306)},
}

PAPER_TABLE3: Dict[str, Dict[str, Tuple[float, float]]] = {
    "UIG+LOC": {"ooi": (0.2675, 0.2322), "gage": (0.3848, 0.3191)},
    "UIG+DKG": {"ooi": (0.2844, 0.2424), "gage": (0.3643, 0.3148)},
    "UIG+UUG": {"ooi": (0.2756, 0.2364), "gage": (0.3543, 0.3048)},
    "UIG+LOC+DKG": {"ooi": (0.3074, 0.2527), "gage": (0.3943, 0.3148)},
    "UIG+UUG+LOC+DKG": {"ooi": (0.3217, 0.2561), "gage": (0.4062, 0.3306)},
    "UIG+UUG+LOC+DKG+MD": {"ooi": (0.3197, 0.2511), "gage": (0.4011, 0.3276)},
}

PAPER_TABLE4: Dict[str, Dict[str, Tuple[float, float]]] = {
    "w/ Att + concat": {"ooi": (0.3217, 0.2561), "gage": (0.4062, 0.3306)},
    "w/ Att + sum": {"ooi": (0.3120, 0.2409), "gage": (0.3894, 0.3123)},
    "w/o Att + concat": {"ooi": (0.2994, 0.2331), "gage": (0.3755, 0.3147)},
}

PAPER_TABLE5: Dict[str, Dict[str, Tuple[float, float]]] = {
    "CKAT-1": {"ooi": (0.3108, 0.2471), "gage": (0.3736, 0.3118)},
    "CKAT-2": {"ooi": (0.3209, 0.2478), "gage": (0.3821, 0.3215)},
    "CKAT-3": {"ooi": (0.3217, 0.2561), "gage": (0.3919, 0.3278)},
}

PathLike = Union[str, pathlib.Path]


def _telemetry_kw(
    log_dir: Optional[PathLike], checkpoint_dir: Optional[PathLike], resume: bool
) -> dict:
    """Per-run telemetry/checkpoint kwargs shared by all table harnesses."""
    return {
        "log_dir": pathlib.Path(log_dir) if log_dir else None,
        "checkpoint_dir": pathlib.Path(checkpoint_dir) if checkpoint_dir else None,
        "resume": resume,
    }


# Table-III knowledge-source combinations, in paper row order.
TABLE3_COMBINATIONS: List[Tuple[str, KnowledgeSources]] = [
    ("UIG+LOC", KnowledgeSources(uug=False, loc=True, dkg=False, md=False)),
    ("UIG+DKG", KnowledgeSources(uug=False, loc=False, dkg=True, md=False)),
    ("UIG+UUG", KnowledgeSources(uug=True, loc=False, dkg=False, md=False)),
    ("UIG+LOC+DKG", KnowledgeSources(uug=False, loc=True, dkg=True, md=False)),
    ("UIG+UUG+LOC+DKG", KnowledgeSources(uug=True, loc=True, dkg=True, md=False)),
    ("UIG+UUG+LOC+DKG+MD", KnowledgeSources(uug=True, loc=True, dkg=True, md=True)),
]


# ------------------------------------------------------------------ tables
def table1(
    ooi: Optional[BenchmarkDataset] = None, gage: Optional[BenchmarkDataset] = None
) -> Tuple[Dict[str, CKGStats], str]:
    """Table I: CKG statistics for both facilities."""
    ooi = ooi or load_dataset("ooi")
    gage = gage or load_dataset("gage")
    stats = {}
    for ds in (ooi, gage):
        ckg = ds.build_ckg(KnowledgeSources.all_sources())
        stats[ds.name] = compute_stats(ckg)
    return stats, render_table1(stats["ooi"], stats["gage"])


def table2(
    datasets: Optional[List[BenchmarkDataset]] = None,
    models: Tuple[str, ...] = MODEL_NAMES,
    epochs: Optional[int] = None,
    seed: int = 0,
    num_workers: int = 0,
    log_dir: Optional[PathLike] = None,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
) -> Tuple[Dict[Tuple[str, str], RunResult], str]:
    """Table II: overall performance comparison across all models.

    ``num_workers > 1`` fans the independent (model × dataset) cells across
    a process pool; every cell reseeds from its spec, so the rows are
    identical to the serial run.  ``log_dir``/``checkpoint_dir``/``resume``
    enable per-cell JSONL telemetry and resumable training checkpoints.
    """
    datasets = datasets or [load_dataset("ooi"), load_dataset("gage")]
    results: Dict[Tuple[str, str], RunResult] = {}
    telemetry = _telemetry_kw(log_dir, checkpoint_dir, resume)
    if num_workers > 1:
        # Workers receive lightweight refs, not pickled datasets; each
        # worker's process-cached pipeline materializes (or mmap-loads) the
        # stages once and shares them across its cells.
        specs = [
            CellSpec(
                label=name,
                model=name,
                dataset=ds.ref(),
                epochs=epochs,
                seed=seed,
                log_dir=str(log_dir) if log_dir else None,
                checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
                resume=resume,
            )
            for name in models
            for ds in datasets
        ]
        for spec, r in run_cells(specs, num_workers=num_workers):
            results[(spec.model, r.dataset)] = r
    else:
        # The pipeline memoizes the CKG and prepared graph per dataset, so
        # every model in the loop shares one build.
        for name in models:
            for ds in datasets:
                results[(name, ds.name)] = run_single_model(
                    name, ds, epochs=epochs, seed=seed, **telemetry
                )
    headers = ["model"]
    for ds in datasets:
        headers += [f"{ds.name} r@20", f"{ds.name} n@20", f"{ds.name} r@20 paper", f"{ds.name} n@20 paper"]
    table = TextTable(headers, title="Table II: overall performance comparison")
    for name in models:
        row: List = [name]
        for ds in datasets:
            r = results[(name, ds.name)]
            paper = PAPER_TABLE2.get(name, {}).get(ds.name, (None, None))
            row += [r.recall, r.ndcg, paper[0], paper[1]]
        table.add_row(row)
    if "CKAT" in models:
        table.add_separator()
        row = ["% improvement vs best baseline"]
        for ds in datasets:
            base = [results[(m, ds.name)] for m in models if m != "CKAT"]
            best_r = max(b.recall for b in base)
            best_n = max(b.ndcg for b in base)
            ck = results[("CKAT", ds.name)]
            row += [
                f"{100 * (ck.recall - best_r) / best_r:+.2f}%",
                f"{100 * (ck.ndcg - best_n) / best_n:+.2f}%",
                "+6.12%" if ds.name == "ooi" else "+7.26%",
                "+5.74%" if ds.name == "ooi" else "+6.05%",
            ]
        table.add_row(row)
    return results, table.render()


def table3(
    datasets: Optional[List[BenchmarkDataset]] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    num_workers: int = 0,
    log_dir: Optional[PathLike] = None,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
) -> Tuple[Dict[Tuple[str, str], RunResult], str]:
    """Table III: CKAT under different knowledge-source combinations."""
    datasets = datasets or [load_dataset("ooi"), load_dataset("gage")]
    results: Dict[Tuple[str, str], RunResult] = {}
    telemetry = _telemetry_kw(log_dir, checkpoint_dir, resume)
    if num_workers > 1:
        specs = [
            CellSpec(
                label=label,
                model="CKAT",
                dataset=ds.ref(),
                epochs=epochs,
                seed=seed,
                sources=sources,
                log_dir=str(log_dir) if log_dir else None,
                checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
                resume=resume,
            )
            for label, sources in TABLE3_COMBINATIONS
            for ds in datasets
        ]
        for spec, r in run_cells(specs, num_workers=num_workers):
            results[(spec.label, r.dataset)] = r
    else:
        for label, sources in TABLE3_COMBINATIONS:
            for ds in datasets:
                results[(label, ds.name)] = run_single_model(
                    "CKAT", ds, epochs=epochs, seed=seed, sources=sources, label=label, **telemetry
                )
    headers = ["knowledge sources"]
    for ds in datasets:
        headers += [f"{ds.name} r@20", f"{ds.name} n@20", f"{ds.name} r@20 paper"]
    table = TextTable(headers, title="Table III: knowledge-source combinations (CKAT)")
    for label, _ in TABLE3_COMBINATIONS:
        row: List = [label]
        for ds in datasets:
            r = results[(label, ds.name)]
            row += [r.recall, r.ndcg, PAPER_TABLE3[label][ds.name][0]]
        table.add_row(row)
    return results, table.render()


def table4(
    datasets: Optional[List[BenchmarkDataset]] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    num_workers: int = 0,
    log_dir: Optional[PathLike] = None,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
) -> Tuple[Dict[Tuple[str, str], RunResult], str]:
    """Table IV: attention mechanism and aggregator ablation."""
    datasets = datasets or [load_dataset("ooi"), load_dataset("gage")]
    variants = [
        ("w/ Att + concat", CKATConfig(aggregator="concat", use_attention=True)),
        ("w/ Att + sum", CKATConfig(aggregator="sum", use_attention=True)),
        ("w/o Att + concat", CKATConfig(aggregator="concat", use_attention=False)),
    ]
    results: Dict[Tuple[str, str], RunResult] = {}
    telemetry = _telemetry_kw(log_dir, checkpoint_dir, resume)
    if num_workers > 1:
        specs = [
            CellSpec(
                label=label,
                model="CKAT",
                dataset=ds.ref(),
                epochs=epochs,
                seed=seed,
                ckat_config=cfg,
                log_dir=str(log_dir) if log_dir else None,
                checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
                resume=resume,
            )
            for label, cfg in variants
            for ds in datasets
        ]
        for spec, r in run_cells(specs, num_workers=num_workers):
            results[(spec.label, r.dataset)] = r
    else:
        for ds in datasets:
            for label, cfg in variants:
                results[(label, ds.name)] = run_single_model(
                    "CKAT",
                    ds,
                    epochs=epochs,
                    seed=seed,
                    ckat_config=cfg,
                    label=label,
                    **telemetry,
                )
    headers = ["variant"]
    for ds in datasets:
        headers += [f"{ds.name} r@20", f"{ds.name} n@20", f"{ds.name} r@20 paper"]
    table = TextTable(headers, title="Table IV: attention / aggregator ablation (CKAT)")
    for label, _ in variants:
        row: List = [label]
        for ds in datasets:
            r = results[(label, ds.name)]
            row += [r.recall, r.ndcg, PAPER_TABLE4[label][ds.name][0]]
        table.add_row(row)
    return results, table.render()


def table5(
    datasets: Optional[List[BenchmarkDataset]] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    num_workers: int = 0,
    log_dir: Optional[PathLike] = None,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
) -> Tuple[Dict[Tuple[str, str], RunResult], str]:
    """Table V: propagation-layer depth L ∈ {1, 2, 3}."""
    datasets = datasets or [load_dataset("ooi"), load_dataset("gage")]
    depths = [
        ("CKAT-1", CKATConfig(layer_dims=(64,))),
        ("CKAT-2", CKATConfig(layer_dims=(64, 32))),
        ("CKAT-3", CKATConfig(layer_dims=(64, 32, 16))),
    ]
    results: Dict[Tuple[str, str], RunResult] = {}
    telemetry = _telemetry_kw(log_dir, checkpoint_dir, resume)
    if num_workers > 1:
        specs = [
            CellSpec(
                label=label,
                model="CKAT",
                dataset=ds.ref(),
                epochs=epochs,
                seed=seed,
                ckat_config=cfg,
                log_dir=str(log_dir) if log_dir else None,
                checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
                resume=resume,
            )
            for label, cfg in depths
            for ds in datasets
        ]
        for spec, r in run_cells(specs, num_workers=num_workers):
            results[(spec.label, r.dataset)] = r
    else:
        for ds in datasets:
            for label, cfg in depths:
                results[(label, ds.name)] = run_single_model(
                    "CKAT",
                    ds,
                    epochs=epochs,
                    seed=seed,
                    ckat_config=cfg,
                    label=label,
                    **telemetry,
                )
    headers = ["depth"]
    for ds in datasets:
        headers += [f"{ds.name} r@20", f"{ds.name} n@20", f"{ds.name} r@20 paper"]
    table = TextTable(headers, title="Table V: embedding propagation depth (CKAT)")
    for label, _ in depths:
        row: List = [label]
        for ds in datasets:
            r = results[(label, ds.name)]
            row += [r.recall, r.ndcg, PAPER_TABLE5[label][ds.name][0]]
        table.add_row(row)
    return results, table.render()
