"""Model registry and the train→evaluate pipeline.

Hyperparameters follow Section VI-D: embedding size 64 for every model except
RippleNet (16, for computational cost), Adam with batch size 512, Xavier
initialization, CKAT depth 3 with hidden dims (64, 32, 16), RippleNet
``n_hop = 2``.  The learning rate and epoch budget are the only knobs the
harness standardizes across models (the paper grid-searches them; we use the
values its grid most often selects, overridable per call).
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
import re
import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.eval.evaluator import RankingEvaluator
from repro.experiments.datasets import BenchmarkDataset, dataset_from_ref, load_dataset
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.prepared import PreparedGraph
from repro.kg.subgraphs import KnowledgeSources
from repro.pipeline import DatasetRef
from repro.models import (
    BPRMF,
    CFKG,
    CKAT,
    CKE,
    FM,
    KGCN,
    NFM,
    CKATConfig,
    ItemFeatureTable,
    Recommender,
    RippleNet,
)
from repro.io.checkpoints import normalize_checkpoint_path
from repro.models.base import FitConfig
from repro.parallel.executor import MapExecutor, ProcessExecutor, SerialExecutor
from repro.utils.telemetry import RunLogger

__all__ = [
    "MODEL_NAMES",
    "build_model",
    "default_fit_config",
    "run_single_model",
    "RunResult",
    "CellSpec",
    "run_cell",
    "run_cells",
]

MODEL_NAMES = ("BPRMF", "FM", "NFM", "CKE", "CFKG", "RippleNet", "KGCN", "CKAT")


def build_model(
    name: str,
    dataset: BenchmarkDataset,
    ckg: CollaborativeKnowledgeGraph,
    seed: int = 0,
    ckat_config: Optional[CKATConfig] = None,
    graph: Optional[PreparedGraph] = None,
) -> Recommender:
    """Instantiate a registry model with the paper's hyperparameters.

    ``graph`` optionally injects the shared :class:`PreparedGraph` so the
    KG-aware models reuse one set of derived adjacencies instead of each
    re-deriving them from ``ckg`` (bit-identical either way).
    """
    M = dataset.split.train.num_users
    N = dataset.split.train.num_items
    if name == "BPRMF":
        return BPRMF(M, N, dim=64, seed=seed)
    if name == "FM":
        return FM(M, N, ItemFeatureTable(ckg), dim=64, seed=seed)
    if name == "NFM":
        return NFM(M, N, ItemFeatureTable(ckg), dim=64, hidden_dim=64, dropout=0.1, seed=seed)
    if name == "CKE":
        return CKE(M, N, ckg, dim=64, seed=seed, graph=graph)
    if name == "CFKG":
        return CFKG(M, N, ckg, dim=64, seed=seed, graph=graph)
    if name == "RippleNet":
        return RippleNet(M, N, ckg, dataset.split.train, dim=16, n_hop=2, seed=seed, graph=graph)
    if name == "KGCN":
        return KGCN(M, N, ckg, dim=64, neighbor_size=16, n_iter=1, seed=seed, graph=graph)
    if name == "CKAT":
        return CKAT(M, N, ckg, ckat_config or CKATConfig(), seed=seed, graph=graph)
    raise ValueError(f"unknown model {name!r}; known: {MODEL_NAMES}")


def default_fit_config(name: str, epochs: Optional[int] = None, seed: int = 0) -> FitConfig:
    """Per-model training budget.

    All models share Adam/batch-512; learning rates are the grid winners
    observed on the synthetic benchmarks (the paper tunes per model over
    {0.05, 0.01, 0.005, 0.001}).
    """
    lr = {
        "BPRMF": 0.01,
        "FM": 0.01,
        "NFM": 0.005,
        "CKE": 0.005,
        "CFKG": 0.005,
        "RippleNet": 0.005,
        "KGCN": 0.005,
        "CKAT": 0.005,
    }.get(name, 0.005)
    default_epochs = {
        "BPRMF": 40,
        "FM": 40,
        "NFM": 40,
        "CKE": 40,
        "CFKG": 40,
        "RippleNet": 50,
        "KGCN": 40,
        "CKAT": 50,
    }.get(name, 40)
    return FitConfig(epochs=epochs if epochs is not None else default_epochs, lr=lr, seed=seed)


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Outcome of one train→evaluate run."""

    model: str
    dataset: str
    recall: float
    ndcg: float
    train_seconds: float
    eval_seconds: float
    final_loss: float

    def row(self):
        return [self.model, self.recall, self.ndcg]


def _run_slug(label: str, dataset_name: str) -> str:
    """Filesystem-safe per-run file stem (labels may hold spaces, '/', '+').

    Sanitizing alone is lossy — ``"lr 0.01"`` and ``"lr/0.01"`` both map to
    ``lr_0.01``, so two distinct runs would share a telemetry file and a
    checkpoint slot.  A short digest of the *unsanitized* identity
    disambiguates while keeping the stem human-readable.
    """
    raw = f"{label}\x1f{dataset_name}"
    sanitized = re.sub(r"[^A-Za-z0-9_.-]+", "_", f"{label}_{dataset_name}").strip("_")
    suffix = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:8]
    return f"{sanitized}-{suffix}"


def run_single_model(
    name: str,
    dataset: BenchmarkDataset,
    ckg: Optional[CollaborativeKnowledgeGraph] = None,
    graph: Optional[PreparedGraph] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    k: int = 20,
    ckat_config: Optional[CKATConfig] = None,
    sources: KnowledgeSources = KnowledgeSources.best(),
    best_epoch_selection: bool = True,
    label: Optional[str] = None,
    log_dir: Optional[pathlib.Path] = None,
    checkpoint_dir: Optional[pathlib.Path] = None,
    checkpoint_every: int = 10,
    resume: bool = False,
    train_workers: int = 0,
) -> RunResult:
    """Train one model on ``dataset`` and evaluate recall@K / ndcg@K.

    ``best_epoch_selection`` enables the KGAT-style protocol: evaluate every
    10 epochs and keep the best-recall snapshot (all models get the same
    treatment, so the comparison stays fair).

    ``log_dir`` turns on JSONL telemetry (one ``<label>_<dataset>.jsonl``
    per run); ``checkpoint_dir`` turns on periodic full-state checkpoints
    every ``checkpoint_every`` epochs, and ``resume=True`` restarts from the
    run's checkpoint when one exists — producing the same parameters as an
    uninterrupted run (see :meth:`repro.models.base.Recommender.fit`).

    ``train_workers > 0`` trains data-parallel through
    :class:`repro.train.ShardedExecutor` with that many worker processes
    (models with private dropout RNGs — NFM, CKAT — are rejected by the
    executor; checkpoints then record the worker/shard layout and only
    resume under the same ``train_workers``).
    """
    if ckg is None:
        ckg = dataset.build_ckg(sources)
        if graph is None:
            # Safe to share only when the CKG came from the dataset's own
            # pipeline: a caller-supplied CKG may differ in content while
            # matching in size, which check_compatible cannot see.
            graph = dataset.prepared_graph(sources)
    model = build_model(name, dataset, ckg, seed=seed, ckat_config=ckat_config, graph=graph)
    fit_cfg = default_fit_config(name, epochs=epochs, seed=seed)
    evaluator = RankingEvaluator(dataset.split.train, dataset.split.test, k=k)
    eval_callback = None
    if best_epoch_selection:
        fit_cfg.eval_every = 10
        fit_cfg.keep_best_metric = f"recall@{k}"
        eval_callback = lambda: evaluator.evaluate_model(model).as_dict()  # noqa: E731
    slug = _run_slug(label or name, dataset.name)
    logger = None
    if log_dir is not None:
        logger = RunLogger(pathlib.Path(log_dir) / f"{slug}.jsonl", run_id=slug)
    checkpoint_path = None
    resume_from = None
    if checkpoint_dir is not None:
        checkpoint_path = pathlib.Path(checkpoint_dir) / f"{slug}.ckpt.npz"
        checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        if resume and normalize_checkpoint_path(checkpoint_path).exists():
            resume_from = checkpoint_path
    executor = None
    if train_workers:
        if train_workers < 0:
            raise ValueError(f"train_workers must be >= 0, got {train_workers}")
        from repro.train import ShardedExecutor

        executor = ShardedExecutor(train_workers)
    try:
        if logger is not None:
            logger.log("cell_start", label=label or name, model=name, dataset=dataset.name)
        fit = model.fit(
            dataset.split.train,
            fit_cfg,
            eval_callback=eval_callback,
            checkpoint_every=checkpoint_every if checkpoint_path is not None else 0,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
            logger=logger,
            executor=executor,
        )
        t0 = time.perf_counter()
        result = evaluator.evaluate_model(model)
        eval_seconds = time.perf_counter() - t0
        if logger is not None:
            pipeline = getattr(dataset, "pipeline", None)
            if pipeline is not None:
                # Stage-build accounting: lets a warm-cache run *prove* it
                # regenerated nothing (all stages loaded, zero built).
                store = pipeline.store
                logger.log(
                    "pipeline_stages",
                    stages=pipeline.stage_counters(),
                    store=store.stats() if store is not None else None,
                )
            logger.log(
                "cell_end",
                label=label or name,
                model=name,
                dataset=dataset.name,
                recall=result.recall,
                ndcg=result.ndcg,
                train_seconds=fit.seconds,
                eval_seconds=eval_seconds,
            )
    finally:
        if logger is not None:
            logger.close()
    return RunResult(
        model=name,
        dataset=dataset.name,
        recall=result.recall,
        ndcg=result.ndcg,
        train_seconds=fit.seconds,
        eval_seconds=eval_seconds,
        final_loss=fit.final_loss,
    )


# --------------------------------------------------------- experiment fan-out
@dataclasses.dataclass(frozen=True)
class CellSpec:
    """Picklable description of one independent table cell.

    A cell is one (model × dataset × variant) train→evaluate run — the unit
    the paper's Tables II–V are made of.  Cells share nothing at runtime, so
    they can fan out across a :class:`~repro.parallel.executor.ProcessExecutor`.

    ``dataset`` is preferably a lightweight
    :class:`~repro.pipeline.DatasetRef` — the worker materializes the stages
    it needs through its process-cached pipeline (memory-mapping artifacts
    when the ref carries a cache dir) instead of receiving pickled arrays.
    A dataset name string (rebuilt via :func:`load_dataset` with
    ``dataset_scale``/``dataset_seed``/``cache_dir``) and a full
    :class:`BenchmarkDataset` remain accepted; all three spellings are
    bit-identical by construction since the bundles are pure functions of
    their seed.
    """

    label: str
    model: str
    dataset: Union[str, DatasetRef, BenchmarkDataset]
    dataset_scale: str = "full"
    dataset_seed: int = 7
    epochs: Optional[int] = None
    seed: int = 0
    k: int = 20
    sources: KnowledgeSources = KnowledgeSources.best()
    ckat_config: Optional[CKATConfig] = None
    best_epoch_selection: bool = True
    log_dir: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 10
    resume: bool = False
    cache_dir: Optional[str] = None


def run_cell(spec: CellSpec) -> RunResult:
    """Execute one cell (worker entry point — module-level, picklable)."""
    dataset = spec.dataset
    if isinstance(dataset, DatasetRef):
        dataset = dataset_from_ref(dataset)
    elif isinstance(dataset, str):
        dataset = load_dataset(
            dataset, scale=spec.dataset_scale, seed=spec.dataset_seed, cache_dir=spec.cache_dir
        )
    return run_single_model(
        spec.model,
        dataset,
        epochs=spec.epochs,
        seed=spec.seed,
        k=spec.k,
        ckat_config=spec.ckat_config,
        sources=spec.sources,
        best_epoch_selection=spec.best_epoch_selection,
        label=spec.label,
        log_dir=pathlib.Path(spec.log_dir) if spec.log_dir else None,
        checkpoint_dir=pathlib.Path(spec.checkpoint_dir) if spec.checkpoint_dir else None,
        checkpoint_every=spec.checkpoint_every,
        resume=spec.resume,
    )


def run_cells(
    specs: Sequence[CellSpec],
    executor: Optional[MapExecutor] = None,
    num_workers: int = 0,
) -> List[Tuple[CellSpec, RunResult]]:
    """Run independent cells, optionally fanned across worker processes.

    Parameters
    ----------
    specs:
        The cells to run.
    executor:
        Explicit backend.  When ``None``, ``num_workers > 1`` selects a
        :class:`ProcessExecutor` (closed after the run); anything else falls
        back to the :class:`SerialExecutor` reference.
    num_workers:
        Convenience worker count used only when ``executor`` is ``None``.

    Results are returned in spec order, paired with their specs, and are
    identical to a serial run: each cell derives all randomness from its own
    seeds, so process boundaries cannot change the numbers.
    """
    specs = list(specs)
    if executor is not None:
        return list(zip(specs, executor.map(run_cell, specs)))
    if num_workers > 1:
        with ProcessExecutor(max_workers=num_workers) as pool:
            return list(zip(specs, pool.map(run_cell, specs)))
    return list(zip(specs, SerialExecutor().map(run_cell, specs)))
