"""Model registry and the train→evaluate pipeline.

Hyperparameters follow Section VI-D: embedding size 64 for every model except
RippleNet (16, for computational cost), Adam with batch size 512, Xavier
initialization, CKAT depth 3 with hidden dims (64, 32, 16), RippleNet
``n_hop = 2``.  The learning rate and epoch budget are the only knobs the
harness standardizes across models (the paper grid-searches them; we use the
values its grid most often selects, overridable per call).
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.eval.evaluator import RankingEvaluator
from repro.experiments.datasets import BenchmarkDataset, load_dataset
from repro.kg.ckg import CollaborativeKnowledgeGraph
from repro.kg.subgraphs import KnowledgeSources
from repro.models import (
    BPRMF,
    CFKG,
    CKAT,
    CKE,
    FM,
    KGCN,
    NFM,
    CKATConfig,
    ItemFeatureTable,
    Recommender,
    RippleNet,
)
from repro.models.base import FitConfig
from repro.parallel.executor import MapExecutor, ProcessExecutor, SerialExecutor

__all__ = [
    "MODEL_NAMES",
    "build_model",
    "default_fit_config",
    "run_single_model",
    "RunResult",
    "CellSpec",
    "run_cell",
    "run_cells",
]

MODEL_NAMES = ("BPRMF", "FM", "NFM", "CKE", "CFKG", "RippleNet", "KGCN", "CKAT")


def build_model(
    name: str,
    dataset: BenchmarkDataset,
    ckg: CollaborativeKnowledgeGraph,
    seed: int = 0,
    ckat_config: Optional[CKATConfig] = None,
) -> Recommender:
    """Instantiate a registry model with the paper's hyperparameters."""
    M = dataset.split.train.num_users
    N = dataset.split.train.num_items
    if name == "BPRMF":
        return BPRMF(M, N, dim=64, seed=seed)
    if name == "FM":
        return FM(M, N, ItemFeatureTable(ckg), dim=64, seed=seed)
    if name == "NFM":
        return NFM(M, N, ItemFeatureTable(ckg), dim=64, hidden_dim=64, dropout=0.1, seed=seed)
    if name == "CKE":
        return CKE(M, N, ckg, dim=64, seed=seed)
    if name == "CFKG":
        return CFKG(M, N, ckg, dim=64, seed=seed)
    if name == "RippleNet":
        return RippleNet(M, N, ckg, dataset.split.train, dim=16, n_hop=2, seed=seed)
    if name == "KGCN":
        return KGCN(M, N, ckg, dim=64, neighbor_size=16, n_iter=1, seed=seed)
    if name == "CKAT":
        return CKAT(M, N, ckg, ckat_config or CKATConfig(), seed=seed)
    raise ValueError(f"unknown model {name!r}; known: {MODEL_NAMES}")


def default_fit_config(name: str, epochs: Optional[int] = None, seed: int = 0) -> FitConfig:
    """Per-model training budget.

    All models share Adam/batch-512; learning rates are the grid winners
    observed on the synthetic benchmarks (the paper tunes per model over
    {0.05, 0.01, 0.005, 0.001}).
    """
    lr = {
        "BPRMF": 0.01,
        "FM": 0.01,
        "NFM": 0.005,
        "CKE": 0.005,
        "CFKG": 0.005,
        "RippleNet": 0.005,
        "KGCN": 0.005,
        "CKAT": 0.005,
    }.get(name, 0.005)
    default_epochs = {
        "BPRMF": 40,
        "FM": 40,
        "NFM": 40,
        "CKE": 40,
        "CFKG": 40,
        "RippleNet": 50,
        "KGCN": 40,
        "CKAT": 50,
    }.get(name, 40)
    return FitConfig(epochs=epochs if epochs is not None else default_epochs, lr=lr, seed=seed)


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Outcome of one train→evaluate run."""

    model: str
    dataset: str
    recall: float
    ndcg: float
    train_seconds: float
    eval_seconds: float
    final_loss: float

    def row(self):
        return [self.model, self.recall, self.ndcg]


def run_single_model(
    name: str,
    dataset: BenchmarkDataset,
    ckg: Optional[CollaborativeKnowledgeGraph] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    k: int = 20,
    ckat_config: Optional[CKATConfig] = None,
    sources: KnowledgeSources = KnowledgeSources.best(),
    best_epoch_selection: bool = True,
) -> RunResult:
    """Train one model on ``dataset`` and evaluate recall@K / ndcg@K.

    ``best_epoch_selection`` enables the KGAT-style protocol: evaluate every
    10 epochs and keep the best-recall snapshot (all models get the same
    treatment, so the comparison stays fair).
    """
    if ckg is None:
        ckg = dataset.build_ckg(sources)
    model = build_model(name, dataset, ckg, seed=seed, ckat_config=ckat_config)
    fit_cfg = default_fit_config(name, epochs=epochs, seed=seed)
    evaluator = RankingEvaluator(dataset.split.train, dataset.split.test, k=k)
    eval_callback = None
    if best_epoch_selection:
        fit_cfg.eval_every = 10
        fit_cfg.keep_best_metric = f"recall@{k}"
        eval_callback = lambda: evaluator.evaluate(model.score_users).as_dict()  # noqa: E731
    fit = model.fit(dataset.split.train, fit_cfg, eval_callback=eval_callback)
    t0 = time.perf_counter()
    result = evaluator.evaluate(model.score_users)
    return RunResult(
        model=name,
        dataset=dataset.name,
        recall=result.recall,
        ndcg=result.ndcg,
        train_seconds=fit.seconds,
        eval_seconds=time.perf_counter() - t0,
        final_loss=fit.final_loss,
    )


# --------------------------------------------------------- experiment fan-out
@dataclasses.dataclass(frozen=True)
class CellSpec:
    """Picklable description of one independent table cell.

    A cell is one (model × dataset × variant) train→evaluate run — the unit
    the paper's Tables II–V are made of.  Cells share nothing at runtime, so
    they can fan out across a :class:`~repro.parallel.executor.ProcessExecutor`.

    ``dataset`` is either a loaded :class:`BenchmarkDataset` (pickled to the
    worker, guaranteeing the exact same data as a serial run) or a dataset
    name, rebuilt in the worker via :func:`load_dataset` with
    ``dataset_scale``/``dataset_seed`` — bit-identical by construction since
    the bundles are pure functions of their seed.
    """

    label: str
    model: str
    dataset: Union[str, BenchmarkDataset]
    dataset_scale: str = "full"
    dataset_seed: int = 7
    epochs: Optional[int] = None
    seed: int = 0
    k: int = 20
    sources: KnowledgeSources = KnowledgeSources.best()
    ckat_config: Optional[CKATConfig] = None
    best_epoch_selection: bool = True


def run_cell(spec: CellSpec) -> RunResult:
    """Execute one cell (worker entry point — module-level, picklable)."""
    dataset = spec.dataset
    if isinstance(dataset, str):
        dataset = load_dataset(dataset, scale=spec.dataset_scale, seed=spec.dataset_seed)
    return run_single_model(
        spec.model,
        dataset,
        epochs=spec.epochs,
        seed=spec.seed,
        k=spec.k,
        ckat_config=spec.ckat_config,
        sources=spec.sources,
        best_epoch_selection=spec.best_epoch_selection,
    )


def run_cells(
    specs: Sequence[CellSpec],
    executor: Optional[MapExecutor] = None,
    num_workers: int = 0,
) -> List[Tuple[CellSpec, RunResult]]:
    """Run independent cells, optionally fanned across worker processes.

    Parameters
    ----------
    specs:
        The cells to run.
    executor:
        Explicit backend.  When ``None``, ``num_workers > 1`` selects a
        :class:`ProcessExecutor` (closed after the run); anything else falls
        back to the :class:`SerialExecutor` reference.
    num_workers:
        Convenience worker count used only when ``executor`` is ``None``.

    Results are returned in spec order, paired with their specs, and are
    identical to a serial run: each cell derives all randomness from its own
    seeds, so process boundaries cannot change the numbers.
    """
    specs = list(specs)
    if executor is not None:
        return list(zip(specs, executor.map(run_cell, specs)))
    if num_workers > 1:
        with ProcessExecutor(max_workers=num_workers) as pool:
            return list(zip(specs, pool.map(run_cell, specs)))
    return list(zip(specs, SerialExecutor().map(run_cell, specs)))
