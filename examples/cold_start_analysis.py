"""Cold-start analysis: when does the knowledge graph matter most?

Run:  python examples/cold_start_analysis.py [--full]

The paper motivates knowledge graphs as auxiliary information that
"alleviates the cold-start and data-sparsity challenges" (Section II-B).
This example quantifies that on the OOI-like benchmark: users are sliced by
training-history length, and CKAT (full CKG) is compared against BPRMF (no
knowledge) per slice, with bootstrap significance on the overall gap.
"""

import sys

import numpy as np

from repro import BPRMF, CKAT, CKATConfig, KnowledgeSources, load_dataset
from repro.eval import paired_bootstrap_test, per_user_metrics
from repro.experiments.coldstart import cold_start_report
from repro.models.base import FitConfig


def main() -> None:
    scale = "full" if "--full" in sys.argv else "small"
    dataset = load_dataset("ooi", scale=scale, seed=17)
    print(dataset.describe(), "\n")
    train, test = dataset.split.train, dataset.split.test
    ckg = dataset.build_ckg(KnowledgeSources.best())

    epochs = 40 if scale == "full" else 15
    bprmf = BPRMF(train.num_users, train.num_items, dim=32, seed=0)
    bprmf.fit(train, FitConfig(epochs=epochs, lr=0.01, seed=0))
    cfg = (
        CKATConfig()
        if scale == "full"
        else CKATConfig(dim=32, relation_dim=32, layer_dims=(32, 16))
    )
    ckat = CKAT(train.num_users, train.num_items, ckg, cfg, seed=0)
    ckat.fit(train, FitConfig(epochs=epochs, lr=0.01 if scale == "small" else 0.005, seed=0))

    # Per-bucket comparison.
    results, table = cold_start_report(
        {"BPRMF (no KG)": bprmf.score_users, "CKAT (full CKG)": ckat.score_users},
        dataset.split,
        k=20,
    )
    print(table)

    # Significance of the overall per-user gap.
    r_bprmf, _, _ = per_user_metrics(bprmf.score_users, train, test, k=20)
    r_ckat, _, _ = per_user_metrics(ckat.score_users, train, test, k=20)
    test_result = paired_bootstrap_test(r_ckat, r_bprmf, seed=0)
    print(
        f"\npaired bootstrap (CKAT − BPRMF recall@20): "
        f"mean diff {test_result.mean_diff:+.4f}, p={test_result.p_value:.4f} "
        f"({'significant' if test_result.significant else 'not significant'} at 0.05, "
        f"n={test_result.n_users} users)"
    )

    # The cold-slice story.
    cold_label = next(iter(results["CKAT (full CKG)"].buckets))
    ck = results["CKAT (full CKG)"].buckets[cold_label].recall
    bp = results["BPRMF (no KG)"].buckets[cold_label].recall
    print(
        f"\ncoldest slice ({cold_label}): CKAT {ck:.4f} vs BPRMF {bp:.4f} — "
        "the knowledge graph substitutes for missing interaction history."
    )


if __name__ == "__main__":
    main()
