"""Parallel CKAT propagation — exploring the paper's scaling note.

Run:  python examples/parallel_propagation.py

The paper's conclusion flags "the parallelization of the CKAT model" as
future work.  The propagation step's neighborhood sum is additive over
edges, so any edge partition yields an exact parallel schedule: shard-local
partial sums + one all-reduce.  This example:

1. builds the OOI-like CKG and a frozen-attention CKAT;
2. partitions the propagation edges with both strategies;
3. verifies the sharded step is *bitwise-equivalent in tolerance* to the
   monolithic one;
4. reports the partition quality metrics (load balance, replication factor)
   that decide real-world communication cost.
"""

import numpy as np

from repro import CKAT, CKATConfig, KnowledgeSources, load_dataset
from repro.parallel import partition_edges, sharded_segment_sum
from repro.utils.tables import TextTable


def main() -> None:
    dataset = load_dataset("ooi", scale="small", seed=21)
    ckg = dataset.build_ckg(KnowledgeSources.best())
    model = CKAT(
        dataset.split.train.num_users,
        dataset.split.train.num_items,
        ckg,
        CKATConfig(dim=32, relation_dim=32, layer_dims=(32,)),
        seed=0,
    )
    store = ckg.propagation_store
    print(ckg.describe())

    # Edge weights in store order (attention weights live in head-sorted
    # order; map them back through the sort).
    adj = model.adj
    order = np.argsort(store.heads, kind="stable")
    weights_store = np.empty(len(store))
    weights_store[order] = model._edge_weights
    emb = model.transr.entity_emb.data

    reference = model._sparse_adj @ emb

    table = TextTable(
        ["strategy", "shards", "max error", "load balance", "replication factor"],
        title="Sharded propagation: exactness and partition quality",
        float_digits=3,
    )
    for strategy in ("contiguous", "hash"):
        for shards in (2, 4, 8):
            part = partition_edges(store, num_shards=shards, strategy=strategy)
            sharded = sharded_segment_sum(store.heads, store.tails, weights_store, emb, part)
            err = float(np.abs(sharded - reference).max())
            table.add_row(
                [
                    strategy,
                    shards,
                    f"{err:.2e}",
                    part.load_balance(),
                    part.replication_factor(store.heads, store.tails),
                ]
            )
    print(table.render())
    print(
        "\nBoth strategies reproduce the monolithic result exactly; hashing"
        "\nbalances head ownership while contiguous ranges minimize shard"
        "\ncount of each head's segment.  Replication factor ≈ the all-gather"
        "\nvolume a distributed implementation would pay per layer."
    )


if __name__ == "__main__":
    main()
