"""OOI data-discovery walkthrough: the full Section III → VI pipeline.

Run:  python examples/ooi_data_discovery.py [--full]

Reproduces the paper's story end to end on the OOI-like facility:

1. generate the facility and a year of synthetic query traffic;
2. measure the Section-III affinities (query concentration, same-city
   likelihood ratios, per-user distribution shape);
3. build the collaborative knowledge graph;
4. train CKAT and a BPRMF control;
5. compare recall@20 / ndcg@20 and inspect what knowledge the attention
   mechanism weights most.

``--full`` uses the full-scale dataset (minutes instead of seconds).
"""

import sys

import numpy as np

from repro import BPRMF, CKAT, CKATConfig, KnowledgeSources, RankingEvaluator, load_dataset
from repro.analysis import compute_distributions, pair_similarity_study, query_concentration
from repro.kg.subgraphs import INTERACT
from repro.models.base import FitConfig


def main() -> None:
    scale = "full" if "--full" in sys.argv else "small"
    dataset = load_dataset("ooi", scale=scale, seed=11)
    catalog, trace, population = dataset.catalog, dataset.trace, dataset.population
    print(dataset.describe(), "\n")

    # ---- Section III: what does query behaviour look like? ----------------
    dist = compute_distributions(trace, catalog)
    summary = dist.summary()
    print("per-user query distributions (Fig 3 shape):")
    print(f"  median distinct objects {summary['median_objects']:.0f}, "
          f"max {summary['max_objects']}; query Gini {summary['query_gini']:.3f}")

    conc = query_concentration(trace, catalog)
    print("query concentration (Section III-B2):")
    print(f"  same-region fraction {conc['same_region_fraction']:.3f} (paper: 0.431)")
    print(f"  same-data-type fraction {conc['same_dtype_fraction']:.3f} (paper: 0.516)")

    pairs = pair_similarity_study(trace, catalog, population, num_pairs=2000, seed=0)
    print("same-city vs random user pairs (Fig 5):")
    print(f"  same-site ratio {pairs.region_ratio:.1f}x, same-dtype ratio {pairs.dtype_ratio:.1f}x\n")

    # ---- Sections IV-V: graph + model --------------------------------------
    ckg = dataset.build_ckg(KnowledgeSources.best())
    print(ckg.describe())
    train, test = dataset.split.train, dataset.split.test
    evaluator = RankingEvaluator(train, test, k=20)

    control = BPRMF(train.num_users, train.num_items, dim=32, seed=0)
    control.fit(train, FitConfig(epochs=20, batch_size=256, lr=0.01, seed=0))
    control_metrics = evaluator.evaluate(control.score_users)

    ckat = CKAT(
        train.num_users,
        train.num_items,
        ckg,
        CKATConfig(dim=32, relation_dim=32, layer_dims=(32, 16)),
        seed=0,
    )
    ckat.fit(train, FitConfig(epochs=25, batch_size=256, lr=0.01, seed=0))
    ckat_metrics = evaluator.evaluate(ckat.score_users)

    print("\nmodel comparison on held-out queries:")
    print(f"  BPRMF (no knowledge graph): {control_metrics}")
    print(f"  CKAT  (full CKG):           {ckat_metrics}")

    # ---- What does the attention focus on? ---------------------------------
    adj = ckat.adj
    weights = ckat._edge_weights
    print("\nmean attention weight by relation (higher = more informative):")
    rel_means = []
    for rid in range(adj.num_relations):
        mask = adj.rels == rid
        if mask.any():
            rel_means.append((adj.rels[mask][0], float(weights[mask].mean()), int(mask.sum())))
    names = ckg.propagation_store.relations
    for rid, mean_w, count in sorted(rel_means, key=lambda x: -x[1])[:8]:
        print(f"  {names.name_of(int(rid)):24s} mean={mean_w:.4f} over {count} edges")


if __name__ == "__main__":
    main()
