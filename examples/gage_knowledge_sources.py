"""GAGE knowledge-source study: which knowledge helps, which is noise.

Run:  python examples/gage_knowledge_sources.py [--full]

The Table-III question on the GAGE-like facility: train CKAT under different
knowledge-source combinations (UIG only, +LOC, +DKG, +UUG, all, all+MD) and
print the recall@20 / ndcg@20 ladder.  The expected shape — location
knowledge matters most for GAGE, metadata (MD) hurts — is the paper's
central Table-III finding.
"""

import sys

from repro import CKATConfig, KnowledgeSources, load_dataset
from repro.experiments.runner import run_single_model
from repro.utils.tables import TextTable

COMBOS = [
    ("UIG only", KnowledgeSources(uug=False, loc=False, dkg=False, md=False)),
    ("UIG+LOC", KnowledgeSources(uug=False, loc=True, dkg=False, md=False)),
    ("UIG+DKG", KnowledgeSources(uug=False, loc=False, dkg=True, md=False)),
    ("UIG+UUG", KnowledgeSources(uug=True, loc=False, dkg=False, md=False)),
    ("UIG+UUG+LOC+DKG", KnowledgeSources.best()),
    ("UIG+UUG+LOC+DKG+MD", KnowledgeSources.all_sources()),
]


def main() -> None:
    scale = "full" if "--full" in sys.argv else "small"
    dataset = load_dataset("gage", scale=scale, seed=13)
    print(dataset.describe(), "\n")

    config = (
        CKATConfig()
        if scale == "full"
        else CKATConfig(dim=16, relation_dim=16, layer_dims=(16, 8), kg_steps_per_epoch=3)
    )
    epochs = 60 if scale == "full" else 12

    table = TextTable(["knowledge sources", "recall@20", "ndcg@20", "KG triples"])
    for label, sources in COMBOS:
        ckg = dataset.build_ckg(sources)
        result = run_single_model(
            "CKAT",
            dataset,
            ckg=ckg,
            epochs=epochs,
            seed=0,
            ckat_config=config,
            best_epoch_selection=(scale == "full"),
        )
        table.add_row([label, result.recall, result.ndcg, len(ckg.store)])
        print(f"done: {label:22s} recall@20={result.recall:.4f}")
    print("\n" + table.render())
    print(
        "\nExpected shape (paper Table III): every knowledge source beats UIG"
        " alone, LOC matters most for GAGE, the full combination wins, and"
        " adding MD metadata degrades the best combination."
    )


if __name__ == "__main__":
    main()
