"""Quickstart: train CKAT on the OOI-like benchmark and get recommendations.

Run:  python examples/quickstart.py

Builds the small OOI-like synthetic facility, constructs the collaborative
knowledge graph from training queries + facility metadata, trains the CKAT
model for a few epochs, evaluates recall@20 / ndcg@20 on held-out queries,
and prints a readable top-10 recommendation list for one user.
"""

import numpy as np

from repro import CKAT, CKATConfig, KnowledgeSources, RankingEvaluator, load_dataset
from repro.models.base import FitConfig


def main() -> None:
    # 1. Data: synthetic OOI-like facility + query trace + 80/20 split.
    dataset = load_dataset("ooi", scale="small", seed=7)
    print(dataset.describe())

    # 2. Knowledge graph: UIG + UUG + LOC + DKG (the paper's best combo).
    ckg = dataset.build_ckg(KnowledgeSources.best())
    print(ckg.describe())

    # 3. Model: CKAT with small dimensions for a fast demo.
    train = dataset.split.train
    model = CKAT(
        train.num_users,
        train.num_items,
        ckg,
        CKATConfig(dim=32, relation_dim=32, layer_dims=(32, 16)),
        seed=0,
    )
    result = model.fit(train, FitConfig(epochs=20, batch_size=256, lr=0.01, seed=0, verbose=True))
    print(f"trained in {result.seconds:.1f}s, final BPR loss {result.final_loss:.4f}")

    # 4. Evaluate on held-out queries.
    evaluator = RankingEvaluator(train, dataset.split.test, k=20)
    metrics = evaluator.evaluate(model.score_users)
    print(f"held-out performance: {metrics}")

    # 5. Recommend for the most active user, with attribute context.
    user = int(np.argmax(train.user_degree()))
    seen = train.items_of_user(user)
    recs = model.recommend(user, k=10, exclude=seen)
    catalog = dataset.catalog
    print(f"\ntop-10 recommendations for user {user} "
          f"(has queried {len(seen)} objects before):")
    for rank, item in enumerate(recs, start=1):
        obj = catalog.objects[int(item)]
        instrument = catalog.instruments[obj.instrument_id]
        site = catalog.sites[instrument.site_id]
        region = catalog.regions[site.region_id]
        dtype = catalog.data_types[obj.dtype_id]
        print(
            f"{rank:2d}. {dtype.name:28s} from {instrument.name:20s} "
            f"({region.name}, {obj.delivery_method})"
        )


if __name__ == "__main__":
    main()
