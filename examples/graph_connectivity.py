"""Why high-order connectivity matters — the paper's premise, measured.

Run:  python examples/graph_connectivity.py

Section II-C argues that standard KG embedding methods under-use
*high-order* connectivity: related data objects may be several hops apart.
This example measures that on the OOI-like CKG:

1. structural summary (the CKG is one giant connected component);
2. hop reachability: what fraction of the catalog a user's signal can reach
   at propagation depth 1, 2, 3 — the direct justification for CKAT's L=3;
3. item-to-item BFS distances: how often related objects sit beyond the
   reach of first-order methods;
4. concrete high-order paths rendered as explanations.
"""

import numpy as np

from repro import KnowledgeSources, load_dataset
from repro.kg import connectivity_summary, hop_reachability, item_distance_histogram
from repro.kg.paths import explain_recommendation


def main() -> None:
    dataset = load_dataset("ooi", scale="small", seed=23)
    ckg = dataset.build_ckg(KnowledgeSources.best())
    print(ckg.describe(), "\n")

    print("structure:")
    for key, value in connectivity_summary(ckg).items():
        print(f"  {key}: {value:.3f}")

    print("\nhop reachability (mean fraction of items reachable from a user):")
    reach = hop_reachability(ckg, max_hops=3, sample=25, seed=0)
    for hops, fraction in reach.items():
        bar = "#" * int(fraction * 40)
        print(f"  ≤{hops} hops: {fraction:6.1%} {bar}")
    print(
        "  → depth-1 propagation sees only a user's own history; depth-3"
        "\n    covers most of the catalog — the paper's case for L = 3."
    )

    print("\nitem-to-item BFS distances (200 random pairs):")
    hist = item_distance_histogram(ckg, num_pairs=200, seed=0)
    for key, value in hist.items():
        print(f"  {key}: {value:.3f}")
    print(
        "  → the pairs beyond 2 hops are exactly the relations first-order"
        "\n    methods (CKE/CFKG) cannot model."
    )

    # Show a few concrete high-order explanations.
    train = dataset.split.train
    user = int(np.argmax(train.user_degree()))
    seen = set(train.items_of_user(user).tolist())
    unseen = [v for v in range(ckg.num_items) if v not in seen]
    print(f"\nhigh-order paths from user {user} to unseen items:")
    shown = 0
    for item in unseen:
        lines = explain_recommendation(ckg, user, int(item), max_length=3, max_paths=1)
        if lines and "interact" not in lines[0].split("→")[-2]:
            print(f"  {lines[0]}")
            shown += 1
        if shown >= 4:
            break


if __name__ == "__main__":
    main()
