"""Cross-facility recommendations — the paper's future-work note, realized.

Run:  python examples/cross_facility.py

Section IV: "Using entity alignment, KGs from multiple facilities can be
consolidated.  This can potentially enable recommendations across multiple
facilities."  This example does exactly that:

1. build an OOI-like and a GAGE-like facility;
2. create ONE shared user population (interdisciplinary researchers) that
   queries both facilities;
3. consolidate both knowledge graphs + both query logs into a single CKG
   via :func:`repro.kg.build_cross_facility_ckg`;
4. train one CKAT over the combined graph;
5. show that a user whose history is mostly oceanographic receives relevant
   geodetic recommendations through the shared collaborative signal.
"""

import numpy as np

from repro.data import InteractionDataset, per_user_split
from repro.facility import (
    build_gage_catalog,
    build_ooi_catalog,
    build_user_population,
    generate_trace,
)
from repro.facility.affinity import GAGE_AFFINITY, OOI_AFFINITY
from repro.facility.gage import GAGEConfig
from repro.facility.ooi import OOIConfig
from repro.eval import RankingEvaluator
from repro.kg import KnowledgeSources, build_cross_facility_ckg
from repro.models import CKAT, CKATConfig
from repro.models.base import FitConfig


def main() -> None:
    ooi = build_ooi_catalog(OOIConfig(num_sites=30), seed=1)
    gage = build_gage_catalog(GAGEConfig(num_stations=150, num_cities=60), seed=1)
    print(ooi.describe())
    print(gage.describe())

    # One shared population of 80 users; each facility gets its own trace
    # from the same people (focus indices are drawn per facility).
    pop_ooi = build_user_population(ooi, num_users=80, num_orgs=16, seed=2)
    pop_gage = build_user_population(gage, num_users=80, num_orgs=16, seed=2)
    trace_ooi = generate_trace(ooi, pop_ooi, OOI_AFFINITY, seed=3, queries_per_user_mean=40.0)
    trace_gage = generate_trace(gage, pop_gage, GAGE_AFFINITY, seed=4, queries_per_user_mean=40.0)
    print(f"traces: {len(trace_ooi)} OOI records, {len(trace_gage)} GAGE records")

    # Combined interactions: item ids of facility 1 are offset past facility 0.
    u0, i0 = trace_ooi.unique_pairs()
    u1, i1 = trace_gage.unique_pairs()
    ckg, index = build_cross_facility_ckg(
        [ooi, gage],
        pop_ooi,  # the shared population (city structure drives the UUG)
        [(u0, i0), (u1, i1)],
        sources=KnowledgeSources.best(),
        seed=5,
    )
    print(ckg.describe())

    users, items = ckg.interaction_pairs()
    data = InteractionDataset(users, items, ckg.num_users, ckg.num_items)
    split = per_user_split(data, seed=6)

    # NOTE: the CKG above contains all interactions; rebuild it on the train
    # split only so evaluation is leak-free.
    train_f0 = index.facility_of_item(split.train.item_ids) == 0
    pairs = []
    for f in (0, 1):
        mask = index.facility_of_item(split.train.item_ids) == f
        local = split.train.item_ids[mask] - index.item_offsets[f]
        pairs.append((split.train.user_ids[mask], local))
    ckg, index = build_cross_facility_ckg(
        [ooi, gage], pop_ooi, pairs, sources=KnowledgeSources.best(), seed=5
    )

    model = CKAT(
        ckg.num_users,
        ckg.num_items,
        ckg,
        CKATConfig(dim=32, relation_dim=32, layer_dims=(32, 16)),
        seed=0,
    )
    model.fit(split.train, FitConfig(epochs=20, batch_size=256, lr=0.01, seed=0, verbose=False))
    evaluator = RankingEvaluator(split.train, split.test, k=20)
    print(f"cross-facility held-out performance: {evaluator.evaluate(model.score_users)}")

    # How often do recommendations cross facilities?  For every user, count
    # top-10 recommendations from the facility they use *less*.
    f_of_train = index.facility_of_item(split.train.item_ids)
    cross_counts = []
    for u in range(ckg.num_users):
        seen = split.train.items_of_user(u)
        if len(seen) < 3:
            continue
        seen_fac = index.facility_of_item(seen)
        minority = 0 if (seen_fac == 0).sum() < (seen_fac == 1).sum() else 1
        recs = model.recommend(u, k=10, exclude=seen)
        cross_counts.append(int((index.facility_of_item(recs) == minority).sum()))
    cross_counts = np.array(cross_counts)
    print(
        f"\ncross-facility recommendations (top-10, minority facility): "
        f"mean {cross_counts.mean():.1f}/10, "
        f"{(cross_counts > 0).mean() * 100:.0f}% of users receive at least one"
    )

    # Show one user in detail: the most facility-balanced history.
    balance = []
    for u in range(ckg.num_users):
        seen_fac = index.facility_of_item(split.train.items_of_user(u))
        balance.append(min((seen_fac == 0).sum(), (seen_fac == 1).sum()))
    user = int(np.argmax(balance))
    seen = split.train.items_of_user(user)
    recs = model.recommend(user, k=10, exclude=seen)
    seen_fac = index.facility_of_item(seen)
    print(
        f"\nuser {user}: {int((seen_fac == 0).sum())} OOI / "
        f"{int((seen_fac == 1).sum())} GAGE items in history; top-10:"
    )
    for rank, item in enumerate(recs, start=1):
        fac = int(index.facility_of_item(np.array([item]))[0])
        catalog = [ooi, gage][fac]
        local = int(item - index.item_offsets[fac])
        obj = catalog.objects[local]
        dtype = catalog.data_types[obj.dtype_id]
        print(f"{rank:2d}. [{catalog.name:9s}] {dtype.name}")
    print(
        "\nThe consolidated CKG carries collaborative signal across facilities:"
        "\nusers' minority-facility interests surface in their recommendations."
    )


if __name__ == "__main__":
    main()
