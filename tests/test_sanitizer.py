"""Runtime numeric sanitizer tests: NaN/Inf injection names the originating
op, shape drift is caught at the optimizer step, float64 upcasts on float32
inputs are reported, and enable/disable fully restores the engine."""

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    SanitizerError,
    _wrap_op,
    disable,
    enable,
    install_from_env,
    is_enabled,
    sanitized,
)
from repro.autograd import Adam, Parameter, SparseRowGrad, Tensor
from repro.autograd import functional as F


@pytest.fixture(autouse=True)
def _sanitizer_off_after():
    yield
    disable()


# ------------------------------------------------------------- NaN injection
def test_nan_from_op_names_the_op():
    with sanitized():
        t = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        with pytest.raises(SanitizerError) as exc_info:
            with np.errstate(divide="ignore"):
                F.mean(F.log(t))
    err = exc_info.value
    assert err.op == "log"  # innermost op, not the enclosing mean
    assert err.kind == "inf"
    assert "log" in str(err)


def test_nan_named_through_composite_loss():
    with sanitized():
        # exp(large) overflows to inf inside 'exp'; bpr_loss never runs.
        big = Tensor(np.array([1e6]))
        with pytest.raises(SanitizerError) as exc_info:
            with np.errstate(over="ignore"):
                F.bpr_loss(F.exp(big), Tensor(np.array([0.0])))
    assert exc_info.value.op == "exp"


def test_tensor_construction_checked():
    with sanitized():
        with pytest.raises(SanitizerError) as exc_info:
            Tensor(np.array([1.0, np.nan]))
    assert exc_info.value.kind == "nan"


def test_accumulate_grad_checked_and_labeled():
    with sanitized():
        p = Parameter(np.ones(3), name="emb.W")
        with pytest.raises(SanitizerError) as exc_info:
            p.accumulate_grad(np.array([1.0, np.nan, 2.0]))
    assert exc_info.value.op == "accumulate_grad[emb.W]"
    assert exc_info.value.kind == "nan"


# ------------------------------------------------------------ optimizer step
def test_step_rejects_shape_mismatch():
    with sanitized():
        p = Parameter(np.ones(3), name="w")
        p.grad = np.ones(2)
        opt = Adam([p])
        with pytest.raises(SanitizerError) as exc_info:
            opt.step()
    assert exc_info.value.kind == "shape"
    assert "step[w]" == exc_info.value.op


def test_step_rejects_nonfinite_gradient():
    with sanitized():
        p = Parameter(np.ones(3), name="w")
        p.grad = np.array([1.0, np.inf, 0.0])
        opt = Adam([p])
        with pytest.raises(SanitizerError) as exc_info:
            opt.step()
    assert exc_info.value.kind == "inf"
    assert exc_info.value.op == "step[w]"


# ------------------------------------------------------------- sparse grads
def test_accumulate_grad_checks_sparse_values():
    with sanitized():
        p = Parameter(np.ones((4, 2)), name="emb.W")
        bad = SparseRowGrad((4, 2), np.array([0, 2]), np.array([[1.0, np.nan], [0.0, 1.0]]))
        with pytest.raises(SanitizerError) as exc_info:
            p.accumulate_grad(bad)
    assert exc_info.value.op == "accumulate_grad[emb.W]"
    assert exc_info.value.kind == "nan"


def test_step_rejects_nonfinite_sparse_gradient():
    with sanitized():
        p = Parameter(np.ones((4, 2)), name="w")
        p.grad = SparseRowGrad((4, 2), np.array([1]), np.array([[np.inf, 0.0]]))
        opt = Adam([p])
        with pytest.raises(SanitizerError) as exc_info:
            opt.step()
    assert exc_info.value.kind == "inf"
    assert exc_info.value.op == "step[w]"


def test_step_rejects_sparse_shape_drift():
    with sanitized():
        p = Parameter(np.ones((4, 2)), name="w")
        p.grad = SparseRowGrad((5, 2), np.array([0]), np.array([[1.0, 1.0]]))
        opt = Adam([p])
        with pytest.raises(SanitizerError) as exc_info:
            opt.step()
    assert exc_info.value.kind == "shape"
    assert exc_info.value.op == "step[w]"


def test_sparse_embedding_training_clean_under_sanitizer():
    rng = np.random.default_rng(1)
    with sanitized():
        W = Parameter(rng.normal(size=(16, 4)), name="W")
        opt = Adam([W], lr=0.01)
        for _ in range(5):
            opt.zero_grad()
            idx = rng.integers(0, 16, size=8)
            loss = F.sum(F.mul(F.take_rows(W, idx), F.take_rows(W, idx)))
            loss.backward()
            assert isinstance(W.grad, SparseRowGrad)
            opt.step()
    assert np.isfinite(W.data).all()


# -------------------------------------------------------------- dtype upcast
def test_float64_upcast_on_float32_inputs_flagged():
    def upcasting_op(a):
        return Tensor(a.data.astype(np.float64))

    wrapped = _wrap_op("upcasting_op", upcasting_op)
    enable()
    with pytest.raises(SanitizerError) as exc_info:
        wrapped(Tensor(np.ones(3, dtype=np.float32)))
    assert exc_info.value.kind == "upcast"
    assert exc_info.value.op == "upcasting_op"


def test_float32_preserving_ops_clean():
    with sanitized():
        a = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.ones(3, dtype=np.float32))
        out = F.add(a, b)
    assert out.dtype == np.float32


# ------------------------------------------------------- install / uninstall
def test_disable_restores_engine_exactly():
    original_add = F.add
    original_init = Tensor.__init__
    enable()
    assert F.add is not original_add
    disable()
    assert F.add is original_add
    assert Tensor.__init__ is original_init
    # Disabled: non-finite tensors are allowed again.
    Tensor(np.array([np.nan]))


def test_double_install_never_double_wraps():
    """A second install (env install + explicit enable, or a desynced flag)
    must not stack wrappers — one disable must restore the pristine engine."""
    import repro.analysis.sanitizer as san

    original_add = F.add
    original_init = Tensor.__init__
    original_step = san._optim.Optimizer.step
    enable()
    wrapped_add = F.add
    enable()  # second install through the public guard: no-op
    assert F.add is wrapped_add
    # Simulate the flag desyncing from the patched engine (two module
    # instances, a test resetting state): the per-function marker still
    # refuses to wrap a wrapper.
    san._installed = False
    enable()
    assert F.add is wrapped_add, "marker guard must refuse to re-wrap"
    assert Tensor.__init__.__sanitizer_wrapped__
    disable()
    assert F.add is original_add
    assert Tensor.__init__ is original_init
    assert san._optim.Optimizer.step is original_step
    assert not san._saved_ops and not san._saved_dispatch_ops


def test_nested_enable_disable_restores_exactly():
    originals = {name: getattr(F, name) for name in F.__all__}
    with sanitized():
        with sanitized():
            assert is_enabled()
        assert is_enabled()
    for name, fn in originals.items():
        assert getattr(F, name) is fn, f"{name} not restored"


def test_sanitized_context_is_nesting_safe():
    enable()
    with sanitized():
        assert is_enabled()
    assert is_enabled()  # outer enable survives the context exit
    disable()
    assert not is_enabled()


def test_install_from_env():
    assert install_from_env({"REPRO_SANITIZE": "1"}) is True
    assert is_enabled()
    disable()
    for off in ({}, {"REPRO_SANITIZE": "0"}, {"REPRO_SANITIZE": "false"}):
        assert install_from_env(off) is False
        assert not is_enabled()


# ------------------------------------------------------------ training smoke
def test_training_loop_runs_clean_under_sanitizer():
    rng = np.random.default_rng(0)
    with sanitized():
        W = Parameter(rng.normal(size=(8, 4)), name="W")
        opt = Adam([W], lr=0.01)
        losses = []
        for _ in range(10):
            opt.zero_grad()
            pos = F.take_rows(W, np.array([0, 1, 2]))
            neg = F.take_rows(W, np.array([3, 4, 5]))
            loss = F.bpr_loss(F.sum(pos, axis=1), F.sum(neg, axis=1))
            loss.backward()
            opt.step()
            losses.append(float(loss.item()))
    assert losses[-1] < losses[0]  # optimized, with no sanitizer trips
    assert np.isfinite(W.data).all()
