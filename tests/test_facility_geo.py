"""Geography tests: haversine, regions, jitter sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facility.geo import (
    GeoPoint,
    Region,
    haversine_km,
    jitter_around,
    pairwise_haversine_km,
)


class TestGeoPoint:
    def test_valid(self):
        p = GeoPoint(45.0, -120.0)
        assert p.lat == 45.0

    def test_bad_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(95.0, 0.0)

    def test_bad_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 200.0)

    def test_distance_to_self_zero(self):
        p = GeoPoint(10.0, 20.0)
        assert p.distance_km(p) == 0.0

    def test_frozen(self):
        p = GeoPoint(0.0, 0.0)
        with pytest.raises(Exception):
            p.lat = 1.0


class TestHaversine:
    def test_known_distance_ny_la(self):
        # New York (40.7128, -74.0060) to Los Angeles (34.0522, -118.2437):
        # ~3936 km great-circle.
        d = haversine_km(40.7128, -74.0060, 34.0522, -118.2437)
        assert 3900 < d < 3975

    def test_equator_degree(self):
        # One degree of longitude at the equator ≈ 111.19 km.
        d = haversine_km(0.0, 0.0, 0.0, 1.0)
        assert 111.0 < d < 111.4

    def test_antipodal(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert 20000 < d < 20050  # ~half circumference

    def test_symmetry(self):
        a = haversine_km(10.0, 20.0, -30.0, 50.0)
        b = haversine_km(-30.0, 50.0, 10.0, 20.0)
        np.testing.assert_allclose(a, b)

    def test_vectorized(self):
        lats = np.array([0.0, 10.0])
        d = haversine_km(lats, 0.0, lats, 1.0)
        assert d.shape == (2,)
        assert d[1] < d[0]  # longitude degrees shrink away from equator

    def test_pairwise_matrix(self):
        lats = np.array([0.0, 10.0, 20.0])
        lons = np.array([0.0, 10.0, 20.0])
        m = pairwise_haversine_km(lats, lons)
        assert m.shape == (3, 3)
        np.testing.assert_allclose(np.diag(m), 0.0, atol=1e-9)
        np.testing.assert_allclose(m, m.T)


@settings(max_examples=50, deadline=None)
@given(
    lat1=st.floats(-89, 89),
    lon1=st.floats(-179, 179),
    lat2=st.floats(-89, 89),
    lon2=st.floats(-179, 179),
)
def test_haversine_triangle_bounds(lat1, lon1, lat2, lon2):
    """Property: 0 <= distance <= half Earth circumference."""
    d = float(haversine_km(lat1, lon1, lat2, lon2))
    assert 0.0 <= d <= 20040.0


class TestRegion:
    def test_contains_center(self):
        r = Region(0, "R", GeoPoint(10.0, 10.0), radius_km=100.0)
        assert r.contains(GeoPoint(10.0, 10.0))

    def test_excludes_far_point(self):
        r = Region(0, "R", GeoPoint(10.0, 10.0), radius_km=100.0)
        assert not r.contains(GeoPoint(40.0, 40.0))

    def test_positive_radius_required(self):
        with pytest.raises(ValueError):
            Region(0, "R", GeoPoint(0.0, 0.0), radius_km=0.0)


class TestJitterAround:
    def test_within_radius(self):
        center = GeoPoint(45.0, -120.0)
        lats, lons = jitter_around(center, 50.0, np.random.default_rng(0), n=200)
        d = haversine_km(center.lat, center.lon, lats, lons)
        # Planar approximation: allow 2% slack.
        assert d.max() <= 51.0

    def test_count(self):
        lats, lons = jitter_around(GeoPoint(0, 0), 10.0, np.random.default_rng(0), n=7)
        assert len(lats) == len(lons) == 7

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            jitter_around(GeoPoint(0, 0), -1.0, np.random.default_rng(0))

    def test_valid_coordinates_at_pole(self):
        lats, lons = jitter_around(GeoPoint(89.5, 0.0), 100.0, np.random.default_rng(0), n=100)
        assert (lats <= 90.0).all()
        assert ((lons >= -180.0) & (lons <= 180.0)).all()

    def test_deterministic(self):
        a = jitter_around(GeoPoint(10, 10), 20.0, np.random.default_rng(3), n=5)
        b = jitter_around(GeoPoint(10, 10), 20.0, np.random.default_rng(3), n=5)
        np.testing.assert_array_equal(a[0], b[0])
