"""Repo-wide API hygiene tests.

Guards the documentation contract of the public surface: every module has a
docstring, every ``__all__`` entry resolves to a real attribute with a
docstring, and the top-level package re-exports what the README promises.
"""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    m.name for m in pkgutil.walk_packages(repro.__path__, "repro.") if "__main__" not in m.name
)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_callables_documented(module_name):
    """Every name a module exports must carry a docstring."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if callable(obj) and getattr(obj, "__module__", "").startswith("repro"):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


class TestTopLevelSurface:
    def test_readme_promises(self):
        for name in (
            "load_dataset",
            "run_single_model",
            "CKAT",
            "CKATConfig",
            "KnowledgeSources",
            "RankingEvaluator",
            "MODEL_NAMES",
        ):
            assert hasattr(repro, name), name

    def test_version(self):
        assert isinstance(repro.__version__, str)

    def test_all_subpackages_importable(self):
        for pkg in (
            "autograd",
            "facility",
            "kg",
            "data",
            "models",
            "eval",
            "analysis",
            "experiments",
            "parallel",
            "io",
            "utils",
        ):
            importlib.import_module(f"repro.{pkg}")
