"""Example-script health checks.

Full example runs take minutes; these tests guarantee the cheaper
invariants: every example parses, imports cleanly (catching API drift), and
exposes a ``main`` entry point.  The quickstart — the example a new user
runs first — is additionally executed end to end.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleHealth:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLE_FILES}
        assert {
            "quickstart",
            "ooi_data_discovery",
            "gage_knowledge_sources",
            "cross_facility",
            "parallel_propagation",
            "cold_start_analysis",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_imports_and_has_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_has_module_docstring(self, path):
        module = load_example(path)
        assert module.__doc__ and len(module.__doc__) > 40

    def test_quickstart_runs_end_to_end(self, capsys, monkeypatch):
        """The first-contact example must actually work."""
        module = load_example(EXAMPLES_DIR / "quickstart.py")
        # Shrink the budget so the test stays fast; the example's own
        # defaults are exercised manually / by the run scripts.
        from repro.models.base import FitConfig as RealFitConfig

        def tiny_fit_config(*args, **kwargs):
            kwargs["epochs"] = min(kwargs.get("epochs", 3), 3)
            kwargs.pop("verbose", None)
            return RealFitConfig(*args, **kwargs)

        monkeypatch.setattr(module, "FitConfig", tiny_fit_config)
        module.main()
        out = capsys.readouterr().out
        assert "top-10 recommendations" in out
        assert "recall@20" in out


class TestGraphConnectivityExample:
    def test_runs_end_to_end(self, capsys):
        module = load_example(EXAMPLES_DIR / "graph_connectivity.py")
        module.main()
        out = capsys.readouterr().out
        assert "hop reachability" in out
        assert "high-order paths" in out
