"""Serving core: score-index freeze/load, batched bit-identity, LRU, fold-in.

The serving layer's headline contract is *bit-identity*: a frozen index
round-trips through the artifact store byte-equal, and a request's response
(ids and scores) is byte-equal no matter which micro-batch it rode in.
"""

import numpy as np
import pytest

from repro.data.interactions import InteractionDataset
from repro.models import BPRMF
from repro.models.base import FitConfig
from repro.serving import (
    FoldInConfig,
    FoldInEngine,
    LRUCache,
    RecommendService,
    ScoreIndex,
)
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    num_users, num_items = 40, 30
    train = InteractionDataset(
        rng.integers(0, num_users, 600), rng.integers(0, num_items, 600),
        num_users, num_items,
    )
    model = BPRMF(num_users, num_items, dim=16, seed=3)
    model.fit(train, FitConfig(epochs=2, batch_size=128, seed=3))
    return model, train


@pytest.fixture()
def index(trained):
    model, train = trained
    return ScoreIndex.from_model(model, train)


# ---------------------------------------------------------------- the index
class TestScoreIndex:
    def test_from_model_copies_factors(self, trained, index):
        model, train = trained
        user_vecs, item_vecs = model.scoring_factors()
        np.testing.assert_array_equal(index.user_vecs, user_vecs)
        np.testing.assert_array_equal(index.item_vecs, item_vecs)
        assert index.user_vecs is not user_vecs  # frozen copy, not a view
        np.testing.assert_array_equal(index.train_indptr, train.user_offsets)
        np.testing.assert_array_equal(index.train_indices, train.item_ids)

    def test_from_model_requires_factors(self, trained):
        _, train = trained

        class Unfactored:
            def scoring_factors(self):
                return None

        with pytest.raises(ValueError, match="scoring_factors"):
            ScoreIndex.from_model(Unfactored(), train)

    def test_store_round_trip_bit_identity(self, index, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        config = {"model": "BPRMF", "seed": 3}
        artifact = index.save(store, config)
        loaded = ScoreIndex.load(store, config)
        assert loaded is not None
        for name in ("user_vecs", "item_vecs", "train_indptr", "train_indices"):
            np.testing.assert_array_equal(
                getattr(loaded, name), getattr(index, name), strict=True
            )
        assert loaded.meta["model"] == "BPRMF"
        # ... and the loaded (mmap'd) index ranks identically.
        users = np.arange(10)
        ref = index.topk_users(users, 5)
        got = loaded.topk_users(users, 5)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(g, r)
        # Content addressing: same config resolves to the same digest.
        assert ScoreIndex.by_digest(store, artifact.digest[:12]) is not None

    def test_by_digest_miss_and_ambiguity(self, index, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        index.save(store, {"seed": 1})
        index.save(store, {"seed": 2})
        assert ScoreIndex.by_digest(store, "ffff") is None
        with pytest.raises(ValueError, match="ambiguous"):
            ScoreIndex.by_digest(store, "")

    def test_topk_users_matches_recommend(self, trained, index):
        model, train = trained
        ids, scores, valid = index.topk_users(np.arange(12), 5)
        for u in range(12):
            ref = model.recommend(u, k=5, exclude=train.items_of_user(u))
            assert ids[u, : valid[u]].tolist() == ref.tolist()
            assert np.isfinite(scores[u, : valid[u]]).all()

    def test_batch_composition_bit_identity(self, index):
        """The same user's ids AND scores are byte-equal across batch shapes
        — alone, in a small batch, in a padded-block-spanning batch."""
        alone = index.topk_users(np.array([7]), 5)
        small = index.topk_users(np.array([3, 7, 11]), 5)
        big = index.topk_users(np.arange(40), 5)  # spans two padded blocks
        np.testing.assert_array_equal(small[0][1], alone[0][0])
        np.testing.assert_array_equal(small[1][1], alone[1][0], strict=True)
        np.testing.assert_array_equal(big[0][7], alone[0][0])
        np.testing.assert_array_equal(big[1][7], alone[1][0], strict=True)

    def test_row_value_and_position_independence(self, index):
        """The padding argument: at the fixed kernel geometry a row's scores
        do not depend on what else is in the batch or where the row sits."""
        rng = np.random.default_rng(5)
        probe = rng.standard_normal(index.dim)
        empty = np.zeros(0, dtype=np.int64)

        def score_at(position, filler_seed):
            filler = np.random.default_rng(filler_seed).standard_normal(
                (8, index.dim)
            )
            vecs = filler.copy()
            vecs[position] = probe
            indptr = np.zeros(9, dtype=np.int64)
            _, scores, _ = index.topk_vectors(vecs, 5, indptr, empty)
            return scores[position]

        base = score_at(0, filler_seed=11)
        np.testing.assert_array_equal(score_at(0, filler_seed=99), base)
        np.testing.assert_array_equal(score_at(5, filler_seed=99), base)

    def test_zero_candidate_row_yields_empty(self, index):
        """A fold-in user who observed every item has nothing to recommend."""
        vecs = np.ones((1, index.dim))
        indptr = np.array([0, index.num_items], dtype=np.int64)
        indices = np.arange(index.num_items, dtype=np.int64)
        ids, scores, valid = index.topk_vectors(vecs, 5, indptr, indices)
        assert valid[0] == 0
        assert (scores[0] == -np.inf).all()

    def test_k_validation(self, index):
        with pytest.raises(ValueError, match="k must be in"):
            index.topk_users(np.array([0]), 0)
        with pytest.raises(ValueError, match="k must be in"):
            index.topk_users(np.array([0]), index.num_items + 1)
        with pytest.raises(ValueError, match="user ids outside"):
            index.topk_users(np.array([index.num_users]), 5)

    def test_shape_validation(self, index):
        with pytest.raises(ValueError, match="factor dim mismatch"):
            ScoreIndex(
                np.zeros((2, 3)), np.zeros((4, 5)),
                np.zeros(3, dtype=np.int64), np.zeros(0, dtype=np.int64),
            )
        with pytest.raises(ValueError, match="num_users"):
            ScoreIndex(
                np.zeros((2, 3)), np.zeros((4, 3)),
                np.zeros(5, dtype=np.int64), np.zeros(0, dtype=np.int64),
            )


# ------------------------------------------------------------------- the LRU
class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes 'a'
        cache.put("c", 3)  # evicts 'b', the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + replace
        cache.put("c", 3)  # evicts 'b'
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_counters(self):
        cache = LRUCache(4)
        assert cache.get("x") is None
        cache.put("x", 1)
        cache.get("x")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert len(cache) == 1 and "x" in cache

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(0)


# ----------------------------------------------------------------- fold-in
class TestFoldIn:
    def test_deterministic(self, index):
        engine = FoldInEngine(index, FoldInConfig(seed=9))
        a = engine.embed([1, 2, 3])
        b = engine.embed([3, 1, 2, 2])  # order/duplicates don't matter
        np.testing.assert_array_equal(a, b, strict=True)

    def test_refinement_moves_off_warm_start(self, index):
        warm = FoldInEngine(index, FoldInConfig(steps=0)).embed([1, 2, 3])
        refined = FoldInEngine(index, FoldInConfig(steps=10)).embed([1, 2, 3])
        np.testing.assert_array_equal(
            warm, np.asarray(index.item_vecs)[[1, 2, 3]].mean(axis=0)
        )
        assert not np.array_equal(refined, warm)

    def test_refinement_helps_ranking(self, index):
        """Refined vectors should rank the observed items' neighborhood at
        least as well as the raw centroid does — sanity, not a proof."""
        items = [1, 2, 3]
        engine = FoldInEngine(index, FoldInConfig(steps=15))
        refined = engine.embed(items)
        item_vecs = np.asarray(index.item_vecs)
        # BPR pushes observed items above unobserved ones for this user.
        scores = item_vecs @ refined
        observed_mean = scores[items].mean()
        rest = np.delete(scores, items).mean()
        assert observed_mean > rest

    def test_item_table_stays_frozen(self, index):
        before = np.asarray(index.item_vecs).copy()
        FoldInEngine(index, FoldInConfig(steps=10)).embed([4, 5])
        np.testing.assert_array_equal(np.asarray(index.item_vecs), before)

    def test_validation(self, index):
        engine = FoldInEngine(index)
        with pytest.raises(ValueError, match="at least one"):
            engine.embed([])
        with pytest.raises(ValueError, match="outside"):
            engine.embed([index.num_items])
        with pytest.raises(ValueError, match="outside"):
            engine.embed([-1])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FoldInConfig(steps=-1)
        with pytest.raises(ValueError):
            FoldInConfig(lr=0.0)
        with pytest.raises(ValueError):
            FoldInConfig(negatives_per_pos=0)


# ----------------------------------------------------------------- service
class TestRecommendService:
    def test_batched_equals_single(self, index):
        service = RecommendService(index)
        requests = [{"user": u, "k": 5} for u in range(20)]
        batched = service.recommend_many(requests)
        singles = [service.recommend_one(r) for r in requests]
        assert batched == singles

    def test_mixed_k_batch_equals_single(self, index):
        """Sub-batching by k: a k=3 request in a mostly-k=8 batch must match
        its standalone result (truncating a k=8 selection is not
        tie-identical to selecting k=3 directly)."""
        service = RecommendService(index)
        mixed = service.recommend_many(
            [{"user": 0, "k": 8}, {"user": 1, "k": 3}, {"user": 2, "k": 8}]
        )
        assert mixed[1] == service.recommend_one({"user": 1, "k": 3})
        assert mixed[0] == service.recommend_one({"user": 0, "k": 8})

    def test_mixed_users_and_handles(self, index):
        service = RecommendService(index)
        handle = service.fold_in([1, 2, 3])
        responses = service.recommend_many(
            [{"user": 4, "k": 5}, {"handle": handle, "k": 5}]
        )
        assert responses[0]["user"] == 4
        assert responses[1]["handle"] == handle
        # Fold-in exclusions: none of the observed items come back.
        assert not {1, 2, 3} & set(responses[1]["items"])
        assert responses[1] == service.recommend_one({"handle": handle, "k": 5})

    def test_foldin_recs_change_with_more_interactions(self, index):
        service = RecommendService(index)
        h1 = service.fold_in([1])
        h2 = service.fold_in([1, 10, 11, 12])
        assert h1 != h2
        r1 = service.recommend_one({"handle": h1, "k": 10})
        r2 = service.recommend_one({"handle": h2, "k": 10})
        assert r1["items"] != r2["items"]

    def test_k_clamped_to_catalog(self, index):
        service = RecommendService(index)
        response = service.recommend_one({"user": 0, "k": 10_000})
        assert response["k"] == index.num_items
        assert len(response["items"]) <= index.num_items
        assert all(np.isfinite(response["scores"]))

    def test_train_positives_never_returned(self, index):
        service = RecommendService(index)
        for u in range(10):
            response = service.recommend_one({"user": u, "k": index.num_items})
            seen = set(index.seen_items(u).tolist())
            assert not seen & set(response["items"])
            # Together the response and the mask cover the whole catalog.
            assert len(response["items"]) == index.num_items - len(seen)

    def test_lru_cache_counts(self, index):
        service = RecommendService(index, cache_capacity=4)
        service.recommend_many([{"user": u, "k": 3} for u in (0, 1, 2, 3)])
        assert service.user_cache.stats()["misses"] == 4
        service.recommend_one({"user": 2, "k": 3})
        assert service.user_cache.stats()["hits"] == 1
        service.recommend_many([{"user": u, "k": 3} for u in (4, 5)])  # evicts 0, 1
        assert service.user_cache.stats()["evictions"] == 2
        service.recommend_one({"user": 0, "k": 3})
        assert service.user_cache.stats()["misses"] == 7

    def test_validation_errors(self, index):
        service = RecommendService(index)
        with pytest.raises(ValueError, match="exactly one"):
            service.validate_request({"k": 5})
        with pytest.raises(ValueError, match="exactly one"):
            service.validate_request({"user": 0, "handle": "x", "k": 5})
        with pytest.raises(ValueError, match="out of range"):
            service.validate_request({"user": index.num_users, "k": 5})
        with pytest.raises(ValueError, match="out of range"):
            service.validate_request({"user": -1, "k": 5})
        with pytest.raises(ValueError, match="unknown fold-in handle"):
            service.validate_request({"handle": "foldin-nope", "k": 5})
        with pytest.raises(ValueError, match="k must be positive"):
            service.validate_request({"user": 0, "k": 0})

    def test_stats_shape(self, index):
        service = RecommendService(index)
        service.recommend_many([{"user": 0, "k": 2}, {"user": 1, "k": 3}])
        stats = service.stats()
        assert stats["requests_served"] == 2
        assert stats["batches"] == 1
        assert stats["kernel_calls"] == 2  # one per distinct k
        assert stats["max_batch"] == 2
        assert stats["index"]["num_users"] == index.num_users
