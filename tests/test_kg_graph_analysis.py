"""Graph-analysis tests: networkx export, connectivity, hop reachability."""

import pytest

from repro.kg.graph_analysis import (
    connectivity_summary,
    hop_reachability,
    item_distance_histogram,
    to_networkx,
)


class TestToNetworkx:
    def test_node_and_edge_counts(self, ooi_ckg):
        g = to_networkx(ooi_ckg)
        assert g.number_of_nodes() == ooi_ckg.num_entities
        assert g.number_of_edges() == len(ooi_ckg.store)

    def test_inverse_export_doubles_edges(self, ooi_ckg):
        g = to_networkx(ooi_ckg, use_inverses=True)
        assert g.number_of_edges() == len(ooi_ckg.propagation_store)

    def test_node_blocks_annotated(self, ooi_ckg):
        g = to_networkx(ooi_ckg)
        user0 = int(ooi_ckg.all_user_entities()[0])
        item0 = int(ooi_ckg.all_item_entities()[0])
        assert g.nodes[user0]["block"] == "user"
        assert g.nodes[item0]["block"] == "item"

    def test_edge_relations_annotated(self, ooi_ckg):
        g = to_networkx(ooi_ckg)
        some_edge = next(iter(g.edges(data=True)))
        assert "relation" in some_edge[2]
        names = set(ooi_ckg.store.relations.names)
        assert some_edge[2]["relation"] in names


class TestConnectivitySummary:
    def test_keys_and_consistency(self, ooi_ckg):
        s = connectivity_summary(ooi_ckg)
        assert s["num_nodes"] == ooi_ckg.num_entities
        assert s["num_components"] >= 1
        assert 0.0 < s["giant_component_fraction"] <= 1.0
        assert s["mean_degree"] > 0

    def test_ckg_is_mostly_one_component(self, ooi_ckg):
        """Entity alignment should weld the subgraphs into one giant
        component — otherwise propagation cannot carry collaborative signal."""
        s = connectivity_summary(ooi_ckg)
        assert s["giant_component_fraction"] > 0.9


class TestHopReachability:
    def test_monotone_in_hops(self, ooi_ckg):
        r = hop_reachability(ooi_ckg, max_hops=3, sample=10, seed=0)
        assert r[1] <= r[2] <= r[3]

    def test_high_order_reaches_much_more(self, ooi_ckg):
        """The paper's core premise: 1-hop sees a user's own history, 3 hops
        see most of the catalog."""
        r = hop_reachability(ooi_ckg, max_hops=3, sample=10, seed=0)
        assert r[3] > 2 * r[1]
        assert r[3] > 0.5

    def test_specific_users(self, ooi_ckg):
        r = hop_reachability(ooi_ckg, users=[0, 1], max_hops=2)
        assert set(r) == {1, 2}

    def test_validation(self, ooi_ckg):
        with pytest.raises(ValueError):
            hop_reachability(ooi_ckg, max_hops=0)


class TestItemDistances:
    def test_histogram_keys(self, ooi_ckg):
        h = item_distance_histogram(ooi_ckg, num_pairs=30, seed=0)
        assert {"mean_distance", "median_distance", "fraction_beyond_2_hops"} <= set(h)

    def test_some_items_beyond_first_order(self, ooi_ckg):
        """Section II-C: related objects may be far apart — a nonzero share
        of item pairs sits beyond 2 hops."""
        h = item_distance_histogram(ooi_ckg, num_pairs=100, seed=0)
        assert h["mean_distance"] >= 2.0

    def test_validation(self, ooi_ckg):
        with pytest.raises(ValueError):
            item_distance_histogram(ooi_ckg, num_pairs=0)
