"""User-population tests: org structure, focus inheritance, city sharing."""

import numpy as np
import pytest

from repro.facility.users import Organization, UserPopulation, build_user_population


class TestBuildUserPopulation:
    def test_counts(self, ooi_catalog):
        pop = build_user_population(ooi_catalog, num_users=50, num_orgs=10, seed=0)
        assert pop.num_users == 50
        assert pop.num_orgs == 10

    def test_every_org_has_member(self, ooi_catalog):
        pop = build_user_population(ooi_catalog, num_users=40, num_orgs=10, seed=0)
        assert len(np.unique(pop.user_org)) == 10

    def test_user_city_inherited_from_org(self, ooi_catalog):
        pop = build_user_population(ooi_catalog, num_users=40, num_orgs=10, seed=0)
        org_city = np.array([o.city_id for o in pop.organizations])
        np.testing.assert_array_equal(pop.user_city, org_city[pop.user_org])

    def test_focus_site_in_focus_region(self, ooi_catalog):
        pop = build_user_population(ooi_catalog, num_users=60, num_orgs=12, seed=1)
        for org in pop.organizations:
            assert ooi_catalog.site_region[org.focus_site] == org.focus_region

    def test_user_focus_site_consistent_with_region(self, ooi_catalog):
        pop = build_user_population(ooi_catalog, num_users=60, num_orgs=12, seed=1)
        np.testing.assert_array_equal(
            ooi_catalog.site_region[pop.user_focus_site], pop.user_focus_region
        )

    def test_city_shared_focus(self, ooi_catalog):
        pop = build_user_population(
            ooi_catalog, num_users=40, num_orgs=20, num_cities=5, seed=2, city_shared_focus=True
        )
        by_city = {}
        for org in pop.organizations:
            key = (org.focus_region, org.focus_site, org.focus_dtype)
            by_city.setdefault(org.city_id, set()).add(key)
        assert all(len(v) == 1 for v in by_city.values())

    def test_org_private_focus(self, ooi_catalog):
        pop = build_user_population(
            ooi_catalog, num_users=80, num_orgs=40, num_cities=2, seed=2, city_shared_focus=False
        )
        focuses = {(o.focus_region, o.focus_site, o.focus_dtype) for o in pop.organizations}
        assert len(focuses) > 2  # more distinct focuses than cities

    def test_zero_deviation_matches_org(self, ooi_catalog):
        pop = build_user_population(
            ooi_catalog, num_users=50, num_orgs=10, seed=3, individual_deviation=0.0
        )
        org_region = np.array([o.focus_region for o in pop.organizations])
        np.testing.assert_array_equal(pop.user_focus_region, org_region[pop.user_org])

    def test_full_deviation_diverges(self, ooi_catalog):
        pop = build_user_population(
            ooi_catalog, num_users=200, num_orgs=5, seed=3, individual_deviation=1.0
        )
        org_region = np.array([o.focus_region for o in pop.organizations])
        assert (pop.user_focus_region != org_region[pop.user_org]).any()

    def test_deterministic(self, ooi_catalog):
        a = build_user_population(ooi_catalog, num_users=30, num_orgs=6, seed=9)
        b = build_user_population(ooi_catalog, num_users=30, num_orgs=6, seed=9)
        np.testing.assert_array_equal(a.user_org, b.user_org)
        np.testing.assert_array_equal(a.user_focus_dtype, b.user_focus_dtype)

    def test_validation(self, ooi_catalog):
        with pytest.raises(ValueError):
            build_user_population(ooi_catalog, num_users=0, num_orgs=1)
        with pytest.raises(ValueError):
            build_user_population(ooi_catalog, num_users=5, num_orgs=10)
        with pytest.raises(ValueError):
            build_user_population(ooi_catalog, num_users=10, num_orgs=2, individual_deviation=2.0)

    def test_zipf_sizes_skewed(self, ooi_catalog):
        pop = build_user_population(ooi_catalog, num_users=500, num_orgs=20, seed=4)
        sizes = np.bincount(pop.user_org, minlength=20)
        assert sizes.max() > 3 * np.median(sizes)


class TestUserPopulationAccessors:
    def test_users_of_org(self, ooi_population):
        users = ooi_population.users_of_org(0)
        assert (ooi_population.user_org[users] == 0).all()

    def test_users_of_city(self, ooi_population):
        users = ooi_population.users_of_city(0)
        assert (ooi_population.user_city[users] == 0).all()

    def test_describe(self, ooi_population):
        text = ooi_population.describe()
        assert "60 users" in text and "12 organizations" in text

    def test_mismatched_arrays_rejected(self):
        orgs = [Organization(0, "O", 0, 0, 0, 0, 1.0)]
        with pytest.raises(ValueError):
            UserPopulation(orgs, np.zeros(3, dtype=int), np.zeros(2, dtype=int), np.zeros(3, dtype=int), ["c"])

    def test_unknown_org_rejected(self):
        orgs = [Organization(0, "O", 0, 0, 0, 0, 1.0)]
        with pytest.raises(ValueError):
            UserPopulation(orgs, np.array([5]), np.array([0]), np.array([0]), ["c"])
