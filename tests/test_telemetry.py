"""Telemetry tests: JSONL run logs, fit/sharded-eval wiring, report command."""

import json

import numpy as np
import pytest

from repro.data.interactions import InteractionDataset
from repro.eval import RankingEvaluator, sharded_evaluate
from repro.models import BPRMF
from repro.models.base import FitConfig
from repro.utils.telemetry import RunLogger, read_run_log, render_run_report, summarize_run


@pytest.fixture()
def tiny_data():
    rng = np.random.default_rng(0)
    n = 400
    return InteractionDataset(
        rng.integers(0, 30, n), rng.integers(0, 50, n), num_users=30, num_items=50
    )


class _TableScorer:
    def __init__(self, table):
        self.table = table

    def __call__(self, users):
        return self.table[users]


class TestRunLogger:
    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path, run_id="r1") as log:
            log.log("run_start", model="x")
            log.log("epoch", epoch=1, loss=0.5)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            event = json.loads(line)
            assert "event" in event and "ts" in event
            assert event["run_id"] == "r1"

    def test_append_across_instances(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path) as log:
            log.log("run_start")
        with RunLogger(path) as log:
            log.log("resume", epoch=3)
        events = read_run_log(path)
        assert [e["event"] for e in events] == ["run_start", "resume"]

    def test_log_after_close_raises(self, tmp_path):
        log = RunLogger(tmp_path / "x.jsonl")
        log.close()
        with pytest.raises(ValueError, match="closed"):
            log.log("epoch")

    def test_creates_parent_dirs(self, tmp_path):
        log = RunLogger(tmp_path / "deep" / "nested" / "run.jsonl")
        log.log("run_start")
        log.close()
        assert (tmp_path / "deep" / "nested" / "run.jsonl").exists()

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path) as log:
            log.log("epoch", epoch=1)
        with path.open("a") as fh:
            fh.write('{"event": "epo')  # killed mid-write
        events = read_run_log(path)
        assert [e["event"] for e in events] == ["epoch"]

    def test_malformed_interior_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('not json\n{"event": "epoch"}\n')
        with pytest.raises(ValueError, match="malformed"):
            read_run_log(path)


class TestConcurrentWriters:
    def test_concurrent_threads_never_tear_lines(self, tmp_path):
        """Regression: unsynchronized write+flush pairs from concurrent
        request handlers could interleave and tear JSONL lines mid-file —
        beyond the torn-*tail* tolerance of read_run_log.  The logger lock
        must keep every line atomic."""
        import threading

        path = tmp_path / "serve.jsonl"
        writers, per_writer = 8, 200
        with RunLogger(path, run_id="serve") as log:
            barrier = threading.Barrier(writers)

            def hammer(worker):
                barrier.wait()
                for i in range(per_writer):
                    log.log("request", worker=worker, seq=i)

            threads = [
                threading.Thread(target=hammer, args=(w,)) for w in range(writers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        events = read_run_log(path)  # raises on any torn interior line
        assert len(events) == writers * per_writer
        for w in range(writers):
            seqs = [e["seq"] for e in events if e["worker"] == w]
            assert seqs == sorted(seqs)  # each writer's own order preserved

    def test_close_is_thread_safe_with_logging(self, tmp_path):
        """A log() racing close() either writes or raises — never crashes on
        a half-closed handle."""
        import threading

        path = tmp_path / "race.jsonl"
        log = RunLogger(path)
        errors = []

        def spam():
            try:
                for _ in range(500):
                    log.log("tick")
            except ValueError:
                return  # closed mid-loop: the documented behavior
            except Exception as exc:  # anything else is a real failure
                errors.append(exc)

        t = threading.Thread(target=spam)
        t.start()
        log.close()
        t.join()
        assert not errors
        read_run_log(path)  # whatever landed is intact JSONL


class TestFitTelemetry:
    def test_one_epoch_event_per_epoch(self, tiny_data, tmp_path):
        path = tmp_path / "fit.jsonl"
        model = BPRMF(30, 50, dim=4, seed=0)
        with RunLogger(path) as log:
            model.fit(tiny_data, FitConfig(epochs=3, batch_size=64, seed=0), logger=log)
        events = read_run_log(path)
        epochs = [e for e in events if e["event"] == "epoch"]
        assert [e["epoch"] for e in epochs] == [1, 2, 3]
        for e in epochs:
            assert set(e) >= {"epoch", "loss", "aux_loss", "seconds"}
            assert e["seconds"] >= 0
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"

    def test_eval_best_and_checkpoint_events(self, tiny_data, tmp_path):
        path = tmp_path / "fit.jsonl"
        model = BPRMF(30, 50, dim=4, seed=0)
        fake = iter([0.2, 0.9])
        with RunLogger(path) as log:
            model.fit(
                tiny_data,
                FitConfig(
                    epochs=2, batch_size=64, seed=0, eval_every=1, keep_best_metric="recall@20"
                ),
                eval_callback=lambda: {"recall@20": next(fake)},
                checkpoint_every=2,
                checkpoint_path=tmp_path / "m.ckpt.npz",
                logger=log,
            )
        kinds = [e["event"] for e in read_run_log(path)]
        assert kinds.count("eval") == 2
        assert kinds.count("best_snapshot") == 2
        assert kinds.count("checkpoint") == 1

    def test_resume_event_logged(self, tiny_data, tmp_path):
        ck = tmp_path / "r.ckpt.npz"
        model = BPRMF(30, 50, dim=4, seed=0)
        model.fit(
            tiny_data,
            FitConfig(epochs=2, batch_size=64, seed=0),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        path = tmp_path / "resumed.jsonl"
        fresh = BPRMF(30, 50, dim=4, seed=0)
        with RunLogger(path) as log:
            fresh.fit(
                tiny_data,
                FitConfig(epochs=4, batch_size=64, seed=0),
                resume_from=ck,
                logger=log,
            )
        events = read_run_log(path)
        assert events[0]["event"] == "resume"
        assert events[0]["epoch"] == 2
        assert [e["epoch"] for e in events if e["event"] == "epoch"] == [3, 4]


class TestShardedEvalTelemetry:
    def test_shard_events(self, ooi_split, tmp_path):
        ev = RankingEvaluator(ooi_split.train, ooi_split.test, k=5)
        rng = np.random.default_rng(0)
        scorer = _TableScorer(rng.normal(size=(ooi_split.train.num_users, ooi_split.train.num_items)))
        path = tmp_path / "eval.jsonl"
        with RunLogger(path) as log:
            sharded_evaluate(ev, scorer, num_shards=3, logger=log)
        events = read_run_log(path)
        shards = [e for e in events if e["event"] == "eval_shard"]
        assert len(shards) == 3
        assert [s["shard"] for s in shards] == [0, 1, 2]
        assert all(s["seconds"] >= 0 and s["num_users"] > 0 for s in shards)
        total = [e for e in events if e["event"] == "eval_sharded"]
        assert len(total) == 1
        assert total[0]["num_users"] == sum(s["num_users"] for s in shards)


class TestSummaries:
    def _sample_events(self):
        return [
            {"event": "run_start", "model": "BPRMF"},
            {"event": "epoch", "epoch": 1, "loss": 0.9, "seconds": 1.0},
            {"event": "epoch", "epoch": 2, "loss": 0.4, "seconds": 1.5},
            {"event": "eval", "epoch": 2, "recall@20": 0.31, "ndcg@20": 0.22},
            {"event": "best_snapshot", "epoch": 2, "score": 0.31},
            {"event": "checkpoint", "epoch": 2, "path": "x.npz"},
            {"event": "run_end", "seconds": 2.5},
        ]

    def test_summarize_run(self):
        s = summarize_run(self._sample_events())
        assert s["epochs"] == 2
        assert s["first_loss"] == 0.9
        assert s["final_loss"] == 0.4
        assert s["min_loss"] == 0.4
        assert s["epoch_seconds"] == 2.5
        assert s["checkpoints"] == 1
        assert s["best_epoch"] == 2
        assert s["last_eval"]["recall@20"] == 0.31

    def test_summarize_empty(self):
        s = summarize_run([])
        assert s["epochs"] == 0
        assert s["final_loss"] is None

    def test_render_report(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path) as log:
            for e in self._sample_events():
                log.log(e["event"], **{k: v for k, v in e.items() if k != "event"})
        text = render_run_report(path)
        assert "epochs: 2" in text
        assert "best epoch: 2" in text
        assert "checkpoints: 1 written" in text

    def test_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        with RunLogger(path) as log:
            log.log("epoch", epoch=1, loss=0.5, seconds=0.1)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "epochs: 1" in out


class TestHarnessIntegration:
    @pytest.fixture(scope="class")
    def small_ooi(self):
        from repro.experiments import load_dataset

        return load_dataset("ooi", scale="small", seed=3)

    def test_run_single_model_writes_log_and_checkpoint(self, small_ooi, tmp_path):
        from repro.experiments import run_single_model
        from repro.experiments.runner import _run_slug

        run_single_model(
            "BPRMF",
            small_ooi,
            epochs=2,
            seed=0,
            log_dir=tmp_path / "logs",
            checkpoint_dir=tmp_path / "ckpts",
            checkpoint_every=1,
        )
        slug = _run_slug("BPRMF", "ooi")
        log_path = tmp_path / "logs" / f"{slug}.jsonl"
        assert log_path.exists()
        events = read_run_log(log_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "cell_start" and kinds[-1] == "cell_end"
        assert kinds.count("epoch") == 2
        assert kinds.count("checkpoint") == 2
        assert kinds.count("pipeline_stages") == 1
        assert (tmp_path / "ckpts" / f"{slug}.ckpt.npz").exists()

    def test_run_single_model_resume_matches_uninterrupted(self, small_ooi, tmp_path):
        from repro.experiments import run_single_model

        straight = run_single_model("BPRMF", small_ooi, epochs=4, seed=0)
        # Interrupted run: 2 epochs, checkpoint at the boundary …
        run_single_model(
            "BPRMF",
            small_ooi,
            epochs=2,
            seed=0,
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        # … then a fresh process resumes to the full budget.
        resumed = run_single_model(
            "BPRMF",
            small_ooi,
            epochs=4,
            seed=0,
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            resume=True,
        )
        assert resumed.recall == straight.recall
        assert resumed.ndcg == straight.ndcg
        assert resumed.final_loss == straight.final_loss

    def test_slugified_label(self, small_ooi, tmp_path):
        from repro.experiments import run_single_model
        from repro.experiments.runner import _run_slug

        run_single_model(
            "BPRMF",
            small_ooi,
            epochs=1,
            seed=0,
            label="w/ Att + concat",
            log_dir=tmp_path,
        )
        slug = _run_slug("w/ Att + concat", "ooi")
        assert slug.startswith("w_Att_concat_ooi-")
        assert (tmp_path / f"{slug}.jsonl").exists()

    def test_slugs_distinguish_colliding_labels(self):
        """Labels that sanitize identically must not share a file stem —
        previously 'lr 0.01' and 'lr/0.01' both mapped to 'lr_0.01_ooi' and
        overwrote each other's telemetry and checkpoints."""
        from repro.experiments.runner import _run_slug

        a, b = _run_slug("lr 0.01", "ooi"), _run_slug("lr/0.01", "ooi")
        assert a != b
        assert a.rsplit("-", 1)[0] == b.rsplit("-", 1)[0] == "lr_0.01_ooi"
        # and the slug is deterministic across calls/processes
        assert a == _run_slug("lr 0.01", "ooi")
