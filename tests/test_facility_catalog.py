"""Catalog schema and coded-array tests (OOI-like, GAGE-like builders)."""

import numpy as np
import pytest

from repro.facility.catalog import (
    DataObject,
    DataType,
    FacilityCatalog,
    Instrument,
    InstrumentClass,
    Site,
)
from repro.facility.gage import GAGEConfig, US_STATES, build_gage_catalog
from repro.facility.geo import GeoPoint, Region
from repro.facility.ooi import OOI_ARRAYS, OOIConfig, build_ooi_catalog


def tiny_catalog():
    regions = [Region(0, "R0", GeoPoint(0, 0), 10.0)]
    sites = [Site(0, "S0", 0, GeoPoint(0, 0))]
    dtypes = [DataType(0, "Temp", "Phys"), DataType(1, "Salt", "Phys")]
    classes = [InstrumentClass(0, "CTD", (0, 1), "WC")]
    instruments = [Instrument(0, 0, 0, "CTD@S0")]
    objects = [
        DataObject(0, 0, 0, "Streamed"),
        DataObject(1, 0, 1, "Recovered"),
    ]
    return FacilityCatalog(
        "tiny", regions, sites, classes, instruments, dtypes, objects, ["Streamed", "Recovered"]
    )


class TestFacilityCatalogValidation:
    def test_valid_builds(self):
        cat = tiny_catalog()
        assert cat.num_objects == 2

    def test_misnumbered_entity_rejected(self):
        regions = [Region(0, "R0", GeoPoint(0, 0), 10.0)]
        sites = [Site(5, "S0", 0, GeoPoint(0, 0))]  # id != index
        with pytest.raises(ValueError, match="site"):
            FacilityCatalog("x", regions, sites, [], [], [], [], [])

    def test_unknown_region_rejected(self):
        regions = [Region(0, "R0", GeoPoint(0, 0), 10.0)]
        sites = [Site(0, "S0", 3, GeoPoint(0, 0))]
        with pytest.raises(ValueError, match="region"):
            FacilityCatalog("x", regions, sites, [], [], [], [], [])

    def test_object_dtype_must_be_measurable(self):
        regions = [Region(0, "R0", GeoPoint(0, 0), 10.0)]
        sites = [Site(0, "S0", 0, GeoPoint(0, 0))]
        dtypes = [DataType(0, "Temp", "P"), DataType(1, "Salt", "P")]
        classes = [InstrumentClass(0, "C", (0,), "G")]  # only dtype 0
        instruments = [Instrument(0, 0, 0, "I")]
        objects = [DataObject(0, 0, 1, "S")]  # dtype 1 not measured
        with pytest.raises(ValueError, match="not measured"):
            FacilityCatalog("x", regions, sites, classes, instruments, dtypes, objects, ["S"])

    def test_unknown_delivery_rejected(self):
        regions = [Region(0, "R0", GeoPoint(0, 0), 10.0)]
        sites = [Site(0, "S0", 0, GeoPoint(0, 0))]
        dtypes = [DataType(0, "Temp", "P")]
        classes = [InstrumentClass(0, "C", (0,), "G")]
        instruments = [Instrument(0, 0, 0, "I")]
        objects = [DataObject(0, 0, 0, "Carrier Pigeon")]
        with pytest.raises(ValueError, match="delivery"):
            FacilityCatalog("x", regions, sites, classes, instruments, dtypes, objects, ["S"])


class TestCodedArrays:
    def test_object_site_via_instrument(self):
        cat = tiny_catalog()
        np.testing.assert_array_equal(cat.object_site, [0, 0])

    def test_object_region(self):
        cat = tiny_catalog()
        np.testing.assert_array_equal(cat.object_region, [0, 0])

    def test_object_dtype(self):
        cat = tiny_catalog()
        np.testing.assert_array_equal(cat.object_dtype, [0, 1])

    def test_discipline_coding(self):
        cat = tiny_catalog()
        assert cat.discipline_names == ["Phys"]
        np.testing.assert_array_equal(cat.object_discipline, [0, 0])

    def test_delivery_coding(self):
        cat = tiny_catalog()
        np.testing.assert_array_equal(cat.object_delivery, [0, 1])

    def test_object_level_absent(self):
        cat = tiny_catalog()
        np.testing.assert_array_equal(cat.object_level, [-1, -1])

    def test_describe(self):
        assert "2 data objects" in tiny_catalog().describe()


class TestOOIBuilder:
    def test_shape_matches_paper(self):
        cat = build_ooi_catalog(seed=0)
        assert cat.num_regions == 8
        assert cat.num_sites == 55
        assert cat.num_instrument_classes == 36
        assert cat.num_disciplines == 5

    def test_every_region_has_sites(self):
        cat = build_ooi_catalog(seed=0)
        assert len(np.unique(cat.site_region)) == 8

    def test_deterministic(self):
        a = build_ooi_catalog(seed=5)
        b = build_ooi_catalog(seed=5)
        assert a.num_objects == b.num_objects
        np.testing.assert_array_equal(a.object_dtype, b.object_dtype)

    def test_seed_changes_output(self):
        a = build_ooi_catalog(seed=1)
        b = build_ooi_catalog(seed=2)
        assert a.num_objects != b.num_objects or not np.array_equal(a.object_dtype, b.object_dtype)

    def test_objects_have_levels(self):
        cat = build_ooi_catalog(seed=0)
        assert (cat.object_level >= 0).all()

    def test_array_names_are_real_ooi(self):
        names = {r.name for r in build_ooi_catalog(seed=0).regions}
        assert "Coastal Pioneer" in names
        assert len(names) == len(OOI_ARRAYS)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OOIConfig(num_sites=4)
        with pytest.raises(ValueError):
            OOIConfig(object_fraction=0.0)

    def test_smaller_config(self):
        cat = build_ooi_catalog(OOIConfig(num_sites=30), seed=0)
        assert cat.num_sites == 30


class TestGAGEBuilder:
    def test_shape(self):
        cat = build_gage_catalog(seed=0)
        assert cat.num_regions == 48
        assert cat.num_sites == 600
        assert cat.num_data_types == 12

    def test_sites_have_cities_and_states(self):
        cat = build_gage_catalog(seed=0)
        assert all(s.city is not None for s in cat.sites)
        assert all(s.state is not None for s in cat.sites)

    def test_one_instrument_per_station(self):
        cat = build_gage_catalog(seed=0)
        assert cat.num_instruments == cat.num_sites
        np.testing.assert_array_equal(cat.instrument_site, np.arange(cat.num_sites))

    def test_station_serves_subset_of_products(self):
        cat = build_gage_catalog(seed=0)
        per_station = np.bincount(cat.object_site, minlength=cat.num_sites)
        assert per_station.min() >= 1
        assert per_station.max() <= 12

    def test_west_coast_heavier(self):
        cat = build_gage_catalog(seed=0)
        state_names = [r.name for r in cat.regions]
        ca = state_names.index("California")
        de = state_names.index("Delaware")
        counts = np.bincount(cat.site_region, minlength=48)
        assert counts[ca] > counts[de]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAGEConfig(num_stations=10, num_cities=50)
        with pytest.raises(ValueError):
            GAGEConfig(num_cities=10)

    def test_48_contiguous_states(self):
        assert len(US_STATES) == 48
        names = {s[0] for s in US_STATES}
        assert "Alaska" not in names and "Hawaii" not in names

    def test_deterministic(self):
        a = build_gage_catalog(seed=3)
        b = build_gage_catalog(seed=3)
        np.testing.assert_array_equal(a.object_site, b.object_site)
