"""Path-finding and recommendation-explanation tests."""

import numpy as np
import pytest

from repro.kg.adjacency import CSRAdjacency
from repro.kg.paths import RelationPath, entity_label, explain_recommendation, find_paths


class TestRelationPath:
    def test_length(self):
        p = RelationPath((1, 2, 3), (0, 1))
        assert p.length == 2

    def test_arity_validated(self):
        with pytest.raises(ValueError):
            RelationPath((1, 2), (0, 1))

    def test_render(self, ooi_ckg):
        users = ooi_ckg.all_user_entities()
        items = ooi_ckg.all_item_entities()
        rid = ooi_ckg.propagation_store.relations.id_of("interact")
        p = RelationPath((int(users[0]), int(items[0])), (rid,))
        text = p.render(ooi_ckg)
        assert "user#0" in text and "item#0" in text and "interact" in text


class TestEntityLabel:
    def test_blocks(self, ooi_ckg):
        assert entity_label(ooi_ckg, int(ooi_ckg.all_user_entities()[0])) == "user#0"
        assert entity_label(ooi_ckg, int(ooi_ckg.all_item_entities()[2])) == "item#2"


class TestFindPaths:
    def test_direct_interaction_found(self, ooi_ckg, ooi_split):
        u = int(ooi_split.train.user_ids[0])
        v = int(ooi_split.train.item_ids[0])
        src = int(ooi_ckg.user_entity_ids(np.array([u]))[0])
        dst = int(ooi_ckg.item_entity_ids(np.array([v]))[0])
        paths = find_paths(ooi_ckg, src, dst, max_length=1)
        assert paths
        assert paths[0].length == 1

    def test_paths_are_valid_edges(self, ooi_ckg, ooi_split):
        adj = CSRAdjacency(ooi_ckg.propagation_store)
        u = int(ooi_split.train.user_ids[0])
        v = int(ooi_split.train.item_ids[5])
        src = int(ooi_ckg.user_entity_ids(np.array([u]))[0])
        dst = int(ooi_ckg.item_entity_ids(np.array([v]))[0])
        for path in find_paths(ooi_ckg, src, dst, max_length=3, max_paths=5, adjacency=adj):
            for i, rel in enumerate(path.relations):
                h, t = path.entities[i], path.entities[i + 1]
                rels, tails = adj.neighbors_of(h)
                assert any(int(r) == rel and int(tt) == t for r, tt in zip(rels, tails))

    def test_paths_shortest_first(self, ooi_ckg, ooi_split):
        u = int(ooi_split.train.user_ids[0])
        v = int(ooi_split.train.item_ids[0])
        src = int(ooi_ckg.user_entity_ids(np.array([u]))[0])
        dst = int(ooi_ckg.item_entity_ids(np.array([v]))[0])
        paths = find_paths(ooi_ckg, src, dst, max_length=3, max_paths=10)
        lengths = [p.length for p in paths]
        assert lengths == sorted(lengths)

    def test_simple_paths_only(self, ooi_ckg, ooi_split):
        src = int(ooi_ckg.all_user_entities()[0])
        dst = int(ooi_ckg.all_item_entities()[0])
        for path in find_paths(ooi_ckg, src, dst, max_length=3, max_paths=10):
            assert len(set(path.entities)) == len(path.entities)

    def test_max_paths_respected(self, ooi_ckg):
        src = int(ooi_ckg.all_user_entities()[0])
        dst = int(ooi_ckg.all_item_entities()[0])
        paths = find_paths(ooi_ckg, src, dst, max_length=3, max_paths=2)
        assert len(paths) <= 2

    def test_validation(self, ooi_ckg):
        with pytest.raises(ValueError):
            find_paths(ooi_ckg, 0, 1, max_length=0)
        with pytest.raises(ValueError):
            find_paths(ooi_ckg, 0, ooi_ckg.num_entities + 5)


class TestExplainRecommendation:
    def test_explains_known_interaction(self, ooi_ckg, ooi_split):
        u = int(ooi_split.train.user_ids[0])
        v = int(ooi_split.train.item_ids[0])
        lines = explain_recommendation(ooi_ckg, u, v, max_length=2)
        assert lines
        assert lines[0].startswith(f"user#{u}")
        assert f"item#{v}" in lines[0]

    def test_high_order_explanation_exists(self, ooi_ckg, ooi_split):
        """An item the user never touched should still connect via ≤3 hops
        (shared attributes / co-queried items) for most pairs."""
        u = int(ooi_split.train.active_users()[0])
        seen = set(ooi_split.train.items_of_user(u).tolist())
        unseen = [v for v in range(ooi_ckg.num_items) if v not in seen][:10]
        connected = sum(
            1 for v in unseen if explain_recommendation(ooi_ckg, u, int(v), max_length=3, max_paths=1)
        )
        assert connected >= 5
