"""Property-based tests over the facility generators (hypothesis).

These validate structural invariants of the synthetic-data substrate for
arbitrary seeds and scales — the guarantees everything downstream (KG
construction, models, analysis) silently relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facility.affinity import AffinityModel
from repro.facility.gage import GAGEConfig, build_gage_catalog
from repro.facility.ooi import OOIConfig, build_ooi_catalog
from repro.facility.users import build_user_population


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_ooi_catalog_invariants(seed):
    cat = build_ooi_catalog(OOIConfig(num_sites=24), seed=seed)
    # Every object's instrument exists and measures the object's data type.
    for obj in cat.objects[:50]:
        inst = cat.instruments[obj.instrument_id]
        klass = cat.instrument_classes[inst.class_id]
        assert obj.dtype_id in klass.dtype_ids
    # Coded arrays agree with the object list.
    assert len(cat.object_site) == cat.num_objects
    assert cat.object_region.max() < cat.num_regions
    assert cat.object_discipline.max() < cat.num_disciplines


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gage_catalog_invariants(seed):
    cat = build_gage_catalog(GAGEConfig(num_stations=80, num_cities=50), seed=seed)
    # Station cities belong to the station's state region.
    state_names = [r.name for r in cat.regions]
    for site in cat.sites[:50]:
        assert site.state == state_names[site.region_id]
    # Every station serves at least one product.
    per_station = np.bincount(cat.object_site, minlength=cat.num_sites)
    assert per_station.min() >= 1


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_users=st.integers(10, 80),
    num_orgs=st.integers(2, 10),
)
def test_population_invariants(seed, num_users, num_orgs):
    if num_users < num_orgs:
        num_users = num_orgs
    cat = build_ooi_catalog(OOIConfig(num_sites=24), seed=0)
    pop = build_user_population(cat, num_users=num_users, num_orgs=num_orgs, seed=seed)
    # Every org populated; cities valid; focus sites inside focus regions.
    assert len(np.unique(pop.user_org)) == num_orgs
    assert pop.user_city.max() < pop.num_cities
    np.testing.assert_array_equal(
        cat.site_region[pop.user_focus_site], pop.user_focus_region
    )


@settings(max_examples=8, deadline=None)
@given(
    pr=st.floats(0.0, 1.0),
    pd=st.floats(0.0, 1.0),
    conc=st.floats(1.0, 50.0),
)
def test_mixture_is_distribution_for_any_params(pr, pd, conc):
    cat = build_ooi_catalog(OOIConfig(num_sites=24), seed=1)
    aff = AffinityModel(p_region=pr, p_dtype=pd, site_concentration=conc)
    m = aff.mixture_distribution(
        cat,
        focus_region=0,
        focus_dtype=0,
        focus_site=int(np.flatnonzero(cat.site_region == 0)[0]),
        rng=np.random.default_rng(0),
    )
    assert (m >= 0).all()
    np.testing.assert_allclose(m.sum(), 1.0, atol=1e-9)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 1000))
def test_trace_generation_total_conservation(seed):
    from repro.facility.trace import TraceGenerator

    cat = build_ooi_catalog(OOIConfig(num_sites=24), seed=2)
    pop = build_user_population(cat, num_users=20, num_orgs=4, seed=3)
    gen = TraceGenerator(cat, pop, AffinityModel(0.4, 0.4), queries_per_user_mean=15.0)
    trace = gen.generate(seed=seed)
    counts = trace.per_user_counts()
    assert counts.sum() == len(trace)
    assert (counts >= 1).all()
    # Timestamps sorted, one per record.
    assert (np.diff(trace.timestamps) >= 0).all()
