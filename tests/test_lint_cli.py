"""CLI contract for ``repro lint``: exit codes 0/1/2, output formats, and the
acceptance gate that the repository's own ``src`` tree lints clean."""

import json
import pathlib

import pytest

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture
def dirty_file(tmp_path):
    p = tmp_path / "dirty.py"
    p.write_text("import pickle\n")
    return p


@pytest.fixture
def clean_file(tmp_path):
    p = tmp_path / "clean.py"
    p.write_text("VALUE = 1\n")
    return p


def test_exit_zero_on_clean_tree(clean_file, capsys):
    assert main(["lint", str(clean_file)]) == 0
    assert "clean: 0 findings in 1 file(s)" in capsys.readouterr().out


def test_exit_one_on_findings(dirty_file, capsys):
    assert main(["lint", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "RPL005" in out
    assert "dirty.py:1:" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "ghost")]) == 2
    assert "internal error" in capsys.readouterr().err


def test_exit_two_on_unknown_select(clean_file, capsys):
    assert main(["lint", "--select", "RPL999", str(clean_file)]) == 2
    assert "RPL999" in capsys.readouterr().err


def test_json_format_parses(dirty_file, capsys):
    assert main(["lint", "--format", "json", str(dirty_file)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema_version"] == 2
    assert doc["summary"]["by_code"] == {"RPL005": 1}


def test_select_filters_rules(tmp_path, capsys):
    p = tmp_path / "two.py"
    p.write_text("import pickle\ndef f(x=[]):\n    return x\n")
    assert main(["lint", "--select", "RPL006", str(p)]) == 1
    out = capsys.readouterr().out
    assert "RPL006" in out and "RPL005" not in out


def test_repository_src_tree_is_clean(capsys):
    """Acceptance criterion: `repro lint src` exits 0 on the final tree."""
    assert main(["lint", str(REPO_ROOT / "src")]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out
