"""CKG construction and statistics tests."""

import numpy as np

from repro.kg import KnowledgeSources, build_ckg, compute_stats
from repro.kg.stats import PAPER_TABLE1, render_table1
from repro.kg.subgraphs import INTERACT


class TestBuildCKG:
    def test_entity_space_covers_all(self, ooi_ckg):
        assert ooi_ckg.store.heads.max() < ooi_ckg.num_entities
        assert ooi_ckg.store.tails.max() < ooi_ckg.num_entities

    def test_relation_count_matches_paper_ooi(self, ooi_ckg):
        # 8 canonical KG relations for the OOI-like facility (Table I).
        assert ooi_ckg.num_relations == 8

    def test_interaction_pairs_roundtrip(self, ooi_ckg, ooi_split):
        users, items = ooi_ckg.interaction_pairs()
        expected = set(
            zip(ooi_split.train.user_ids.tolist(), ooi_split.train.item_ids.tolist())
        )
        got = set(zip(users.tolist(), items.tolist()))
        assert got == expected

    def test_test_split_not_in_graph(self, ooi_ckg, ooi_split):
        users, items = ooi_ckg.interaction_pairs()
        graph_pairs = set(zip(users.tolist(), items.tolist()))
        test_pairs = set(zip(ooi_split.test.user_ids.tolist(), ooi_split.test.item_ids.tolist()))
        assert not (graph_pairs & test_pairs)

    def test_propagation_store_has_inverses(self, ooi_ckg):
        assert len(ooi_ckg.propagation_store) == 2 * len(ooi_ckg.store)

    def test_interact_symmetric_in_propagation(self, ooi_ckg):
        h, t = ooi_ckg.propagation_store.triples_of_relation(INTERACT)
        pairs = set(zip(h.tolist(), t.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_sources_control_graph(self, ooi_catalog, ooi_population, ooi_split):
        bare = build_ckg(
            ooi_catalog,
            ooi_population,
            ooi_split.train.user_ids,
            ooi_split.train.item_ids,
            sources=KnowledgeSources(uug=False, loc=False, dkg=False, md=False),
        )
        full = build_ckg(
            ooi_catalog,
            ooi_population,
            ooi_split.train.user_ids,
            ooi_split.train.item_ids,
            sources=KnowledgeSources.all_sources(),
        )
        assert len(bare.store) < len(full.store)
        assert bare.num_entities == full.num_entities  # stable id space

    def test_user_item_entity_helpers(self, ooi_ckg):
        u = ooi_ckg.user_entity_ids(np.array([0]))
        v = ooi_ckg.item_entity_ids(np.array([0]))
        assert u[0] != v[0]
        assert len(ooi_ckg.all_user_entities()) == ooi_ckg.num_users
        assert len(ooi_ckg.all_item_entities()) == ooi_ckg.num_items

    def test_describe(self, ooi_ckg):
        text = ooi_ckg.describe()
        assert "entities" in text and "triples" in text


class TestCKGStats:
    def test_counts_consistent(self, ooi_ckg):
        stats = compute_stats(ooi_ckg)
        assert stats.entities == ooi_ckg.num_entities
        assert stats.relationships == 8
        assert stats.kg_triples + stats.interaction_triples == stats.total_triples

    def test_link_avg_positive(self, ooi_ckg):
        stats = compute_stats(ooi_ckg)
        assert stats.link_avg > 0

    def test_per_relation_sums(self, ooi_ckg):
        stats = compute_stats(ooi_ckg)
        assert sum(stats.per_relation.values()) == stats.total_triples

    def test_row_format(self, ooi_ckg):
        row = compute_stats(ooi_ckg).row()
        assert len(row) == 4

    def test_render_table1(self, ooi_ckg):
        text = render_table1(compute_stats(ooi_ckg), compute_stats(ooi_ckg))
        assert "Table I" in text
        assert str(PAPER_TABLE1["OOI"]["entities"]) in text
