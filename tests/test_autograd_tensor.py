"""Tests for the core Tensor / tape machinery."""

import numpy as np
import pytest

from repro.autograd import Parameter, Tensor, functional as F, is_grad_enabled, no_grad
from repro.autograd.tensor import astensor, collect_parameters, unbroadcast


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad

    def test_construction_from_array(self):
        a = np.arange(6.0).reshape(2, 3)
        t = Tensor(a)
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_object_array_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array([object()]))

    def test_numpy_returns_underlying(self):
        a = np.ones(3)
        t = Tensor(a)
        assert t.numpy() is a

    def test_item_scalar(self):
        assert Tensor(np.array(2.5)).item() == 2.5

    def test_item_single_element(self):
        assert Tensor(np.array([3.0])).item() == 3.0

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor(np.zeros(2)))

    def test_repr_mentions_grad(self):
        assert "requires_grad=True" in repr(Parameter(np.zeros(2)))

    def test_detach_cuts_tape(self):
        p = Parameter(np.ones(3))
        d = p.detach()
        assert not d.requires_grad
        assert d.data is p.data

    def test_dtype_property(self):
        assert Tensor(np.zeros(2, dtype=np.float64)).dtype == np.float64

    def test_T_transposes(self):
        p = Parameter(np.arange(6.0).reshape(2, 3))
        assert p.T.shape == (3, 2)


class TestBackward:
    def test_scalar_backward_default_grad(self):
        p = Parameter(np.array([2.0]))
        loss = F.sum(F.mul(p, p))
        loss.backward()
        np.testing.assert_allclose(p.grad, [4.0])

    def test_backward_requires_grad(self):
        t = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_nonscalar_backward_needs_grad(self):
        p = Parameter(np.ones(3))
        out = F.mul(p, astensor(2.0))
        with pytest.raises(RuntimeError):
            out.backward()

    def test_nonscalar_backward_with_grad(self):
        p = Parameter(np.ones(3))
        out = F.mul(p, astensor(2.0))
        out.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(p.grad, [2.0, 4.0, 6.0])

    def test_gradient_accumulates_across_backwards(self):
        p = Parameter(np.array([1.0]))
        F.sum(p).backward()
        F.sum(p).backward()
        np.testing.assert_allclose(p.grad, [2.0])

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        F.sum(p).backward()
        p.zero_grad()
        assert p.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # loss = (p + p) · 1 → dloss/dp = 2 per element.
        p = Parameter(np.ones(3))
        loss = F.sum(F.add(p, p))
        loss.backward()
        np.testing.assert_allclose(p.grad, [2.0, 2.0, 2.0])

    def test_shared_subexpression(self):
        p = Parameter(np.array([3.0]))
        q = F.mul(p, p)  # p²
        loss = F.sum(F.add(q, q))  # 2p² → grad 4p = 12
        loss.backward()
        np.testing.assert_allclose(p.grad, [12.0])

    def test_add_alias_safety(self):
        # `add` forwards the same grad array to both parents; ensure the two
        # parents' grad buffers are independent afterwards.
        a = Parameter(np.zeros(3))
        b = Parameter(np.zeros(3))
        F.sum(F.add(a, b)).backward()
        a.grad += 100.0
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_deep_chain(self):
        p = Parameter(np.array([1.0]))
        x = p
        for _ in range(200):
            x = F.add(x, astensor(0.0))
        F.sum(x).backward()
        np.testing.assert_allclose(p.grad, [1.0])

    def test_backward_frees_tape(self):
        p = Parameter(np.ones(2))
        out = F.mul(p, p)
        loss = F.sum(out)
        loss.backward()
        assert out._backward is None
        assert out._parents == ()


class TestNoGrad:
    def test_no_grad_disables_tape(self):
        p = Parameter(np.ones(2))
        with no_grad():
            out = F.mul(p, p)
        assert not out.requires_grad

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_expanded_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 6.0


class TestOperators:
    def test_add_operator(self):
        out = Tensor(np.ones(2)) + Tensor(np.ones(2))
        np.testing.assert_allclose(out.data, [2.0, 2.0])

    def test_radd_scalar(self):
        out = 1.0 + Tensor(np.ones(2))
        np.testing.assert_allclose(out.data, [2.0, 2.0])

    def test_sub_operator(self):
        out = Tensor(np.ones(2)) - 0.5
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_rsub(self):
        out = 1.0 - Tensor(np.ones(2))
        np.testing.assert_allclose(out.data, [0.0, 0.0])

    def test_mul_operator(self):
        out = Tensor(np.full(2, 3.0)) * 2.0
        np.testing.assert_allclose(out.data, [6.0, 6.0])

    def test_div_operator(self):
        out = Tensor(np.full(2, 3.0)) / 2.0
        np.testing.assert_allclose(out.data, [1.5, 1.5])

    def test_rdiv(self):
        out = 6.0 / Tensor(np.full(2, 3.0))
        np.testing.assert_allclose(out.data, [2.0, 2.0])

    def test_neg_operator(self):
        out = -Tensor(np.ones(2))
        np.testing.assert_allclose(out.data, [-1.0, -1.0])

    def test_pow_operator(self):
        out = Tensor(np.full(2, 3.0)) ** 2
        np.testing.assert_allclose(out.data, [9.0, 9.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_sum_method(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.sum().item() == 15.0

    def test_mean_method(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.mean().item() == 2.5

    def test_reshape_method(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)


class TestCollectParameters:
    def test_collects_from_object(self):
        class Model:
            def __init__(self):
                self.a = Parameter(np.zeros(2))
                self.b = Parameter(np.zeros(3))
                self.other = "not a parameter"

        params = collect_parameters(Model())
        assert len(params) == 2

    def test_collects_from_nested_lists_and_dicts(self):
        class Model:
            def __init__(self):
                self.layers = [{"w": Parameter(np.zeros(1))}, {"w": Parameter(np.zeros(1))}]

        assert len(collect_parameters(Model())) == 2

    def test_plain_tensor_not_collected(self):
        class Model:
            def __init__(self):
                self.t = Tensor(np.zeros(2))

        assert collect_parameters(Model()) == []

    def test_cycle_safe(self):
        class Node:
            pass

        a, b = Node(), Node()
        a.peer, b.peer = b, a
        a.p = Parameter(np.zeros(1))
        assert len(collect_parameters(a)) == 1


class TestParameter:
    def test_requires_grad_even_under_no_grad(self):
        with no_grad():
            p = Parameter(np.zeros(2))
        assert p.requires_grad

    def test_float64_coercion(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        assert p.dtype == np.float64
