"""Failure-aware ProcessExecutor tests: retry, pool restart, in-process fallback.

The worker functions fail only when executed in a *worker* process (pid
differs from the pid baked into the item), so the in-process fallback
succeeds — modelling worker-environment failures (OOM kills, missing GPU,
corrupted worker state) rather than deterministic bad input.
"""

import os

import numpy as np
import pytest

from repro.eval import RankingEvaluator, sharded_evaluate
from repro.parallel.executor import ProcessExecutor, SerialExecutor


def _double(x):
    return x * 2


def _raise_in_worker(item):
    parent_pid, x = item
    if os.getpid() != parent_pid:
        raise RuntimeError(f"worker cannot handle {x}")
    return x * 2


def _raise_for_three_in_worker(item):
    parent_pid, x = item
    if x == 3 and os.getpid() != parent_pid:
        raise RuntimeError("worker cannot handle 3")
    return x * 2


def _exit_in_worker(item):
    parent_pid, x = item
    if os.getpid() != parent_pid:
        os._exit(17)  # hard crash: breaks the pool, not just the task
    return x * 2


class _CrashyScorer:
    """score_fn that fails in workers but works in the parent process."""

    def __init__(self, table, parent_pid):
        self.table = table
        self.parent_pid = parent_pid

    def __call__(self, users):
        if os.getpid() != self.parent_pid:
            raise RuntimeError("worker-side scoring failure")
        return self.table[users]


class TestWorkerExceptionRecovery:
    def test_single_bad_item_falls_back(self):
        items = [(os.getpid(), x) for x in range(6)]
        with ProcessExecutor(max_workers=2) as pool:
            out = pool.map(_raise_for_three_in_worker, items)
            assert pool.failure_count >= 1
        assert out == [x * 2 for x in range(6)]

    def test_all_items_fall_back_to_serial_result(self):
        items = [(os.getpid(), x) for x in range(4)]
        with ProcessExecutor(max_workers=2) as pool:
            out = pool.map(_raise_in_worker, items)
        assert out == SerialExecutor().map(_raise_in_worker, items)

    def test_deterministic_failure_still_propagates(self):
        """A function that fails everywhere (including in-process) raises."""

        with ProcessExecutor(max_workers=2) as pool:
            with pytest.raises(ValueError):
                pool.map(_always_raise, [1])

    def test_healthy_map_unaffected(self):
        with ProcessExecutor(max_workers=2) as pool:
            assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool.failure_count == 0


def _always_raise(x):
    raise ValueError(f"bad item {x}")


class TestWorkerCrashRecovery:
    def test_hard_crash_restarts_pool_and_falls_back(self):
        """os._exit in a worker breaks the pool; map must still return."""
        items = [(os.getpid(), x) for x in range(3)]
        with ProcessExecutor(max_workers=2) as pool:
            out = pool.map(_exit_in_worker, items)
            assert pool.failure_count >= 1
        assert out == [x * 2 for x in range(3)]

    def test_pool_usable_after_crash(self):
        items = [(os.getpid(), 1)]
        with ProcessExecutor(max_workers=2) as pool:
            pool.map(_exit_in_worker, items)
            # The replaced pool must handle healthy work again.
            assert pool.map(_double, [5]) == [10]


class TestShardedEvalSurvivesWorkerFailure:
    def test_sharded_evaluate_degrades_not_aborts(self, ooi_split):
        ev = RankingEvaluator(ooi_split.train, ooi_split.test, k=5)
        rng = np.random.default_rng(0)
        table = rng.normal(size=(ooi_split.train.num_users, ooi_split.train.num_items))
        scorer = _CrashyScorer(table, os.getpid())
        reference = sharded_evaluate(ev, scorer, num_shards=3, executor=SerialExecutor())
        with ProcessExecutor(max_workers=2) as pool:
            survived = sharded_evaluate(ev, scorer, num_shards=3, executor=pool)
            assert pool.failure_count >= 1
        assert survived.recall == reference.recall
        assert survived.ndcg == reference.ndcg
