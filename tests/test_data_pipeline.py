"""Data pipeline tests: interactions, splitting, BPR sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BPRSampler, InteractionDataset, per_user_split, trace_to_interactions
from repro.facility.trace import QueryTrace


class TestInteractionDataset:
    def test_sorted_by_user(self, ooi_interactions):
        assert (np.diff(ooi_interactions.user_ids) >= 0).all()

    def test_items_of_user(self, ooi_interactions):
        for u in range(0, ooi_interactions.num_users, 7):
            items = ooi_interactions.items_of_user(u)
            brute = np.sort(
                ooi_interactions.item_ids[ooi_interactions.user_ids == u]
            )
            np.testing.assert_array_equal(items, brute)

    def test_degrees_sum(self, ooi_interactions):
        assert ooi_interactions.user_degree().sum() == len(ooi_interactions)
        assert ooi_interactions.item_degree().sum() == len(ooi_interactions)

    def test_to_csr(self, ooi_interactions):
        csr = ooi_interactions.to_csr()
        assert csr.shape == (ooi_interactions.num_users, ooi_interactions.num_items)
        assert csr.nnz == len(ooi_interactions)

    def test_density(self):
        d = InteractionDataset(np.array([0]), np.array([0]), 2, 2)
        assert d.density() == 0.25

    def test_active_users(self):
        d = InteractionDataset(np.array([0, 2]), np.array([0, 1]), 4, 3)
        np.testing.assert_array_equal(d.active_users(), [0, 2])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(np.array([5]), np.array([0]), 3, 3)
        with pytest.raises(ValueError):
            InteractionDataset(np.array([0]), np.array([9]), 3, 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(np.array([0, 1]), np.array([0]), 3, 3)

    def test_repr(self, ooi_interactions):
        assert "interactions" in repr(ooi_interactions)


class TestTraceToInteractions:
    def test_deduplicates(self):
        trace = QueryTrace(
            np.array([0, 0, 0, 0, 0]),
            np.array([1, 1, 2, 3, 4]),
            np.arange(5.0),
            num_users=2,
            num_objects=5,
        )
        data = trace_to_interactions(trace, min_user_interactions=1)
        assert len(data) == 4

    def test_min_user_filter(self):
        trace = QueryTrace(
            np.array([0, 0, 0, 1]),
            np.array([0, 1, 2, 0]),
            np.arange(4.0),
            num_users=2,
            num_objects=3,
        )
        data = trace_to_interactions(trace, min_user_interactions=2)
        assert (data.user_ids == 0).all()  # user 1 dropped

    def test_min_item_filter(self):
        trace = QueryTrace(
            np.array([0, 1, 2, 0, 1, 2]),
            np.array([0, 0, 0, 1, 1, 2]),
            np.arange(6.0),
            num_users=3,
            num_objects=3,
        )
        data = trace_to_interactions(trace, min_user_interactions=1, min_item_interactions=2)
        assert 2 not in data.item_ids  # item 2 queried by one user only

    def test_id_spaces_preserved(self, ooi_trace, ooi_interactions):
        assert ooi_interactions.num_users == ooi_trace.num_users
        assert ooi_interactions.num_items == ooi_trace.num_objects

    def test_invalid_minimums(self, ooi_trace):
        with pytest.raises(ValueError):
            trace_to_interactions(ooi_trace, min_user_interactions=0)


class TestPerUserSplit:
    def test_disjoint(self, ooi_split):
        ooi_split.assert_disjoint()

    def test_sizes(self, ooi_interactions, ooi_split):
        assert len(ooi_split.train) + len(ooi_split.test) == len(ooi_interactions)

    def test_fraction_respected(self, ooi_interactions, ooi_split):
        frac = len(ooi_split.train) / len(ooi_interactions)
        assert 0.72 <= frac <= 0.88

    def test_multi_interaction_users_in_both(self, ooi_interactions, ooi_split):
        deg = ooi_interactions.user_degree()
        for u in np.flatnonzero(deg >= 2):
            assert len(ooi_split.train.items_of_user(u)) >= 1
            assert len(ooi_split.test.items_of_user(u)) >= 1

    def test_single_interaction_stays_in_train(self):
        data = InteractionDataset(np.array([0]), np.array([3]), 1, 5)
        split = per_user_split(data, seed=0)
        assert len(split.train) == 1 and len(split.test) == 0

    def test_deterministic(self, ooi_interactions):
        a = per_user_split(ooi_interactions, seed=3)
        b = per_user_split(ooi_interactions, seed=3)
        np.testing.assert_array_equal(a.train.item_ids, b.train.item_ids)

    def test_invalid_fraction(self, ooi_interactions):
        with pytest.raises(ValueError):
            per_user_split(ooi_interactions, train_fraction=1.0)


class TestBPRSampler:
    def test_negatives_never_positive(self, ooi_split, rng):
        sampler = BPRSampler(ooi_split.train)
        for _ in range(5):
            u, p, n = sampler.sample_batch(256, rng)
            assert not sampler.is_positive(u, n).any()

    def test_positives_are_positive(self, ooi_split, rng):
        sampler = BPRSampler(ooi_split.train)
        u, p, n = sampler.sample_batch(256, rng)
        assert sampler.is_positive(u, p).all()

    def test_batch_shapes(self, ooi_split, rng):
        sampler = BPRSampler(ooi_split.train)
        u, p, n = sampler.sample_batch(64, rng)
        assert len(u) == len(p) == len(n) == 64

    def test_epoch_covers_all_interactions(self, ooi_split):
        sampler = BPRSampler(ooi_split.train)
        seen = 0
        pairs = set()
        for u, p, n in sampler.epoch_batches(128, seed=0):
            seen += len(u)
            pairs.update(zip(u.tolist(), p.tolist()))
            assert not sampler.is_positive(u, n).any()
        assert seen == len(ooi_split.train)
        assert len(pairs) == len(ooi_split.train)

    def test_empty_dataset_rejected(self):
        empty = InteractionDataset(np.zeros(0, dtype=int), np.zeros(0, dtype=int), 2, 2)
        with pytest.raises(ValueError):
            BPRSampler(empty)

    def test_invalid_batch_size(self, ooi_split, rng):
        sampler = BPRSampler(ooi_split.train)
        with pytest.raises(ValueError):
            sampler.sample_batch(0, rng)

    def test_is_positive_vectorized_matches_set(self, ooi_split, rng):
        sampler = BPRSampler(ooi_split.train)
        pairs = set(zip(ooi_split.train.user_ids.tolist(), ooi_split.train.item_ids.tolist()))
        users = rng.integers(0, ooi_split.train.num_users, 200)
        items = rng.integers(0, ooi_split.train.num_items, 200)
        got = sampler.is_positive(users, items)
        expect = np.array([(u, i) in pairs for u, i in zip(users.tolist(), items.tolist())])
        np.testing.assert_array_equal(got, expect)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_split_property_disjoint_and_complete(seed):
    """Property: any random interaction set splits losslessly and disjointly."""
    rng = np.random.default_rng(seed)
    n_pairs = int(rng.integers(5, 60))
    users = rng.integers(0, 8, n_pairs)
    items = rng.integers(0, 15, n_pairs)
    keys = np.unique(users * 15 + items)
    data = InteractionDataset(keys // 15, keys % 15, 8, 15)
    split = per_user_split(data, seed=seed)
    split.assert_disjoint()
    assert len(split.train) + len(split.test) == len(data)
