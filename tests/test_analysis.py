"""Analysis-module tests: Fig-3 distributions, Fig-5 locality, Fig-4 t-SNE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distributions import (
    compute_distributions,
    gini_coefficient,
    tail_ratio,
)
from repro.analysis.locality import pair_similarity_study, query_concentration
from repro.analysis.tsne import TSNE, object_feature_matrix, tsne_embed_user_queries
from repro.facility.trace import QueryTrace


class TestDistributions:
    def test_counts_match_brute_force(self, ooi_trace, ooi_catalog):
        d = compute_distributions(ooi_trace, ooi_catalog)
        # Brute force for a few users (distributions are sorted by activity,
        # so compare as multisets).
        expected_objects = sorted(
            len(np.unique(ooi_trace.queries_of_user(u))) for u in range(ooi_trace.num_users)
        )
        assert sorted(d.objects.tolist()) == expected_objects

    def test_sorted_by_activity(self, ooi_trace, ooi_catalog):
        d = compute_distributions(ooi_trace, ooi_catalog)
        assert (np.diff(d.total_queries) <= 0).all()

    def test_locations_bounded_by_objects(self, ooi_trace, ooi_catalog):
        d = compute_distributions(ooi_trace, ooi_catalog)
        assert (d.locations <= d.objects).all()
        assert (d.data_types <= d.objects).all()

    def test_summary_keys(self, ooi_trace, ooi_catalog):
        s = compute_distributions(ooi_trace, ooi_catalog).summary()
        assert {"active_users", "max_objects", "query_gini"} <= set(s)

    def test_catalog_mismatch_rejected(self, ooi_trace, gage_catalog):
        with pytest.raises(ValueError):
            compute_distributions(ooi_trace, gage_catalog)


class TestGiniAndTail:
    def test_gini_uniform_zero(self):
        assert gini_coefficient(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini_coefficient(v) > 0.99

    def test_gini_empty(self):
        assert gini_coefficient(np.array([])) == 0.0

    def test_gini_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))

    def test_tail_ratio_uniform(self):
        assert tail_ratio(np.ones(100), 0.1) == pytest.approx(0.1)

    def test_tail_ratio_all_in_top(self):
        v = np.zeros(100)
        v[0] = 10.0
        assert tail_ratio(v, 0.1) == 1.0

    def test_tail_ratio_invalid_fraction(self):
        with pytest.raises(ValueError):
            tail_ratio(np.ones(5), 0.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gini_bounds_property(self, seed):
        rng = np.random.default_rng(seed)
        v = rng.random(50)
        g = gini_coefficient(v)
        assert 0.0 <= g <= 1.0


class TestQueryConcentration:
    def test_keys_and_bounds(self, ooi_trace, ooi_catalog):
        c = query_concentration(ooi_trace, ooi_catalog)
        assert 0.0 < c["same_region_fraction"] <= 1.0
        assert 0.0 < c["same_dtype_fraction"] <= 1.0

    def test_single_region_trace_fully_concentrated(self, ooi_catalog):
        region0_objects = np.flatnonzero(ooi_catalog.object_region == 0)[:3]
        trace = QueryTrace(
            np.zeros(6, dtype=int),
            np.tile(region0_objects, 2),
            np.arange(6.0),
            num_users=1,
            num_objects=ooi_catalog.num_objects,
        )
        c = query_concentration(trace, ooi_catalog, min_queries=5)
        assert c["same_region_fraction"] == pytest.approx(1.0)


class TestPairStudy:
    def test_affinity_data_shows_locality(self, ooi_trace, ooi_catalog, ooi_population):
        r = pair_similarity_study(
            ooi_trace, ooi_catalog, ooi_population, num_pairs=2000, seed=0
        )
        assert r.region_ratio > 1.0
        assert r.dtype_ratio > 1.0

    def test_probabilities_bounded(self, ooi_trace, ooi_catalog, ooi_population):
        r = pair_similarity_study(ooi_trace, ooi_catalog, ooi_population, num_pairs=500, seed=1)
        for p in (r.p_region_same_city, r.p_region_random, r.p_dtype_same_city, r.p_dtype_random):
            assert 0.0 <= p <= 1.0

    def test_deterministic(self, ooi_trace, ooi_catalog, ooi_population):
        a = pair_similarity_study(ooi_trace, ooi_catalog, ooi_population, num_pairs=300, seed=5)
        b = pair_similarity_study(ooi_trace, ooi_catalog, ooi_population, num_pairs=300, seed=5)
        assert a.as_dict() == b.as_dict()

    def test_invalid_num_pairs(self, ooi_trace, ooi_catalog, ooi_population):
        with pytest.raises(ValueError):
            pair_similarity_study(ooi_trace, ooi_catalog, ooi_population, num_pairs=0)

    def test_as_dict_keys(self, ooi_trace, ooi_catalog, ooi_population):
        r = pair_similarity_study(ooi_trace, ooi_catalog, ooi_population, num_pairs=200, seed=2)
        assert {"region_ratio", "dtype_ratio"} <= set(r.as_dict())


class TestTSNE:
    def test_separates_two_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(0.0, 0.3, size=(20, 10))
        blob_b = rng.normal(5.0, 0.3, size=(20, 10))
        X = np.vstack([blob_a, blob_b])
        Y = TSNE(perplexity=10, n_iter=250).fit_transform(X, seed=0)
        centroid_a = Y[:20].mean(axis=0)
        centroid_b = Y[20:].mean(axis=0)
        within = np.linalg.norm(Y[:20] - centroid_a, axis=1).mean()
        between = np.linalg.norm(centroid_a - centroid_b)
        assert between > 3 * within

    def test_output_shape(self):
        X = np.random.default_rng(1).normal(size=(15, 6))
        Y = TSNE(perplexity=5, n_iter=60).fit_transform(X, seed=0)
        assert Y.shape == (15, 2)

    def test_centered_output(self):
        X = np.random.default_rng(1).normal(size=(12, 4))
        Y = TSNE(perplexity=4, n_iter=60).fit_transform(X, seed=0)
        np.testing.assert_allclose(Y.mean(axis=0), 0.0, atol=1e-9)

    def test_kl_better_than_random_layout(self):
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(0, 0.3, (15, 8)), rng.normal(4, 0.3, (15, 8))])
        tsne = TSNE(perplexity=8, n_iter=200)
        Y = tsne.fit_transform(X, seed=0)
        random_layout = rng.normal(size=Y.shape)
        assert tsne.kl_divergence(X, Y) < tsne.kl_divergence(X, random_layout)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((2, 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            TSNE(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNE(n_iter=0)

    def test_deterministic(self):
        X = np.random.default_rng(3).normal(size=(10, 5))
        a = TSNE(perplexity=4, n_iter=50).fit_transform(X, seed=9)
        b = TSNE(perplexity=4, n_iter=50).fit_transform(X, seed=9)
        np.testing.assert_allclose(a, b)


class TestObjectFeatures:
    def test_shape(self, ooi_catalog):
        feats = object_feature_matrix(ooi_catalog)
        expected_cols = (
            ooi_catalog.num_sites
            + ooi_catalog.num_regions
            + ooi_catalog.num_data_types
            + ooi_catalog.num_disciplines
            + ooi_catalog.num_instrument_classes
        )
        assert feats.shape == (ooi_catalog.num_objects, expected_cols)

    def test_rows_are_five_hot(self, ooi_catalog):
        feats = object_feature_matrix(ooi_catalog)
        np.testing.assert_allclose(feats.sum(axis=1), 5.0)


class TestUserQueryEmbedding:
    def test_embed_heavy_users(self, ooi_trace, ooi_catalog, ooi_population):
        counts = ooi_trace.per_user_counts()
        top = np.argsort(-counts)[:4]
        emb = tsne_embed_user_queries(
            ooi_trace, ooi_catalog, top, max_objects_per_user=10, n_iter=60, seed=0
        )
        assert emb.points.shape[1] == 2
        assert len(emb.points) == len(emb.user_labels) == len(emb.object_ids)
        assert set(emb.user_labels.tolist()) <= set(top.tolist())

    def test_separability_bounded(self, ooi_trace, ooi_catalog, ooi_population):
        counts = ooi_trace.per_user_counts()
        top = np.argsort(-counts)[:4]
        emb = tsne_embed_user_queries(
            ooi_trace, ooi_catalog, top, max_objects_per_user=10, n_iter=60, seed=0
        )
        assert -1.0 <= emb.user_separability() <= 1.0


class TestFacilityReport:
    def test_report_structure(self, ooi_trace, ooi_catalog, ooi_population):
        from repro.analysis import facility_report

        report = facility_report(ooi_trace, ooi_catalog, ooi_population, num_pairs=500, seed=0)
        assert report.facility == ooi_catalog.name
        assert report.num_records == len(ooi_trace)
        assert report.pair_study is not None
        text = report.render()
        assert "trace report" in text and "Fig 5" in text

    def test_report_without_population(self, ooi_trace, ooi_catalog):
        from repro.analysis import facility_report

        report = facility_report(ooi_trace, ooi_catalog)
        assert report.pair_study is None
        assert "Fig 5" not in report.render()
