"""CSR adjacency and neighbor-sampling tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg.adjacency import CSRAdjacency, sample_fixed_neighbors
from repro.kg.triples import TripleStore


def make_store(heads, rels, tails, n=10):
    store = TripleStore(num_entities=n)
    # Insert grouped per relation id to use the public API.
    rels = np.asarray(rels)
    for rid in np.unique(rels):
        mask = rels == rid
        store.add_triples(f"r{rid}", np.asarray(heads)[mask], np.asarray(tails)[mask])
    return store


class TestCSRAdjacency:
    def test_sorted_by_head(self):
        adj = CSRAdjacency(make_store([3, 1, 1, 0], [0, 0, 1, 1], [4, 5, 6, 7]))
        assert (np.diff(adj.heads) >= 0).all()

    def test_offsets_delimit_segments(self):
        adj = CSRAdjacency(make_store([3, 1, 1, 0], [0, 0, 1, 1], [4, 5, 6, 7]))
        assert adj.offsets[0] == 0
        assert adj.offsets[-1] == adj.num_edges
        for h in range(adj.num_entities):
            seg = adj.heads[adj.offsets[h] : adj.offsets[h + 1]]
            assert (seg == h).all()

    def test_neighbors_of(self):
        adj = CSRAdjacency(make_store([1, 1], [0, 1], [5, 6]))
        rels, tails = adj.neighbors_of(1)
        assert set(tails.tolist()) == {5, 6}

    def test_neighbors_of_isolated(self):
        adj = CSRAdjacency(make_store([1], [0], [5]))
        rels, tails = adj.neighbors_of(7)
        assert len(rels) == len(tails) == 0

    def test_degree(self):
        adj = CSRAdjacency(make_store([0, 0, 2], [0, 0, 0], [1, 2, 3]))
        np.testing.assert_array_equal(adj.degree()[:3], [2, 0, 1])

    def test_relation_edge_groups_cover_all(self):
        adj = CSRAdjacency(make_store([3, 1, 1, 0], [0, 0, 1, 1], [4, 5, 6, 7]))
        order, bounds = adj.relation_edge_groups()
        assert len(order) == adj.num_edges
        assert bounds[-1] == adj.num_edges
        for r in range(adj.num_relations):
            idx = order[bounds[r] : bounds[r + 1]]
            assert (adj.rels[idx] == r).all()

    def test_stable_edge_order(self):
        store = make_store([0, 0], [0, 0], [5, 3])
        a = CSRAdjacency(store)
        b = CSRAdjacency(store)
        np.testing.assert_array_equal(a.tails, b.tails)


class TestSampleFixedNeighbors:
    def test_shapes(self, ooi_ckg):
        ents, rels = sample_fixed_neighbors(ooi_ckg.propagation_store, k=4, seed=0)
        assert ents.shape == (ooi_ckg.num_entities, 4)
        assert rels.shape == (ooi_ckg.num_entities, 4)

    def test_neighbors_are_true_neighbors(self):
        store = make_store([0, 0, 1], [0, 0, 0], [2, 3, 4], n=5)
        ents, rels = sample_fixed_neighbors(store, k=6, seed=1)
        assert set(ents[0].tolist()) <= {2, 3}
        assert set(ents[1].tolist()) == {4}

    def test_isolated_entities_self_loop(self):
        store = make_store([0], [0], [1], n=4)
        ents, rels = sample_fixed_neighbors(store, k=3, seed=0)
        np.testing.assert_array_equal(ents[3], [3, 3, 3])
        np.testing.assert_array_equal(rels[3], [0, 0, 0])

    def test_deterministic(self, ooi_ckg):
        a, _ = sample_fixed_neighbors(ooi_ckg.propagation_store, k=4, seed=5)
        b, _ = sample_fixed_neighbors(ooi_ckg.propagation_store, k=4, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_invalid_k(self, ooi_ckg):
        with pytest.raises(ValueError):
            sample_fixed_neighbors(ooi_ckg.propagation_store, k=0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_edges=st.integers(1, 40))
def test_csr_roundtrip_property(seed, n_edges):
    """Property: CSR layout preserves the multiset of triples."""
    rng = np.random.default_rng(seed)
    n = 12
    heads = rng.integers(0, n, n_edges)
    rels = rng.integers(0, 3, n_edges)
    tails = rng.integers(0, n, n_edges)
    store = make_store(heads, rels, tails, n=n)
    adj = CSRAdjacency(store)
    orig = sorted(zip(store.heads.tolist(), store.rels.tolist(), store.tails.tolist()))
    got = sorted(zip(adj.heads.tolist(), adj.rels.tolist(), adj.tails.tolist()))
    assert orig == got
