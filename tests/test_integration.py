"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

# Full training loops — excluded from the fast smoke run (-m "not slow").
pytestmark = pytest.mark.slow

from repro import (
    CKAT,
    CKATConfig,
    KnowledgeSources,
    RankingEvaluator,
    load_dataset,
)
from repro.models import BPRMF
from repro.models.base import FitConfig


class TestEndToEnd:
    def test_training_beats_untrained(self):
        """The core sanity check: a trained CKAT ranks held-out queries
        better than its untrained self."""
        ds = load_dataset("ooi", scale="small", seed=1)
        ckg = ds.build_ckg(KnowledgeSources.best())
        ev = RankingEvaluator(ds.split.train, ds.split.test, k=10)
        cfg = CKATConfig(dim=16, relation_dim=16, layer_dims=(16,), kg_steps_per_epoch=3)
        model = CKAT(ds.split.train.num_users, ds.split.train.num_items, ckg, cfg, seed=0)
        before = ev.evaluate(model.score_users).recall
        model.fit(ds.split.train, FitConfig(epochs=12, batch_size=256, lr=0.01, seed=0))
        after = ev.evaluate(model.score_users).recall
        assert after > before

    def test_knowledge_graph_helps_vs_bprmf(self):
        """On affinity-structured data, CKAT with the CKG should beat plain
        matrix factorization at equal (small) budgets most of the time; we
        assert a weak form — CKAT is at least competitive (≥ 90% of BPRMF) —
        to keep the test stable at tiny scale."""
        ds = load_dataset("ooi", scale="small", seed=2)
        ckg = ds.build_ckg(KnowledgeSources.best())
        ev = RankingEvaluator(ds.split.train, ds.split.test, k=10)
        M, N = ds.split.train.num_users, ds.split.train.num_items
        bprmf = BPRMF(M, N, dim=16, seed=0)
        bprmf.fit(ds.split.train, FitConfig(epochs=12, batch_size=256, lr=0.01, seed=0))
        ckat = CKAT(
            M, N, ckg, CKATConfig(dim=16, relation_dim=16, layer_dims=(16, 8), kg_steps_per_epoch=3), seed=0
        )
        ckat.fit(ds.split.train, FitConfig(epochs=12, batch_size=256, lr=0.01, seed=0))
        r_bprmf = ev.evaluate(bprmf.score_users).recall
        r_ckat = ev.evaluate(ckat.score_users).recall
        assert r_ckat >= 0.9 * r_bprmf

    def test_full_reproducibility_of_pipeline(self):
        """Same seed → same dataset → same trained scores, end to end."""
        outs = []
        for _ in range(2):
            ds = load_dataset("ooi", scale="small", seed=4)
            ckg = ds.build_ckg(KnowledgeSources.best())
            model = CKAT(
                ds.split.train.num_users,
                ds.split.train.num_items,
                ckg,
                CKATConfig(dim=8, relation_dim=8, layer_dims=(8,), kg_steps_per_epoch=2),
                seed=0,
            )
            model.fit(ds.split.train, FitConfig(epochs=3, batch_size=256, seed=0))
            outs.append(model.score_users(np.array([0, 1]))[0])
        np.testing.assert_allclose(outs[0], outs[1])

    def test_table3_source_monotonicity_weak(self):
        """More (relevant) knowledge should not catastrophically hurt: the
        full CKG run lands within a generous band of the UIG-only run at
        small scale (the full Table III shape is asserted by the bench at
        full scale)."""
        from repro.experiments.runner import run_single_model
        from repro.models import CKATConfig as C

        ds = load_dataset("ooi", scale="small", seed=5)
        cfg = C(dim=16, relation_dim=16, layer_dims=(16,), kg_steps_per_epoch=2)
        bare = run_single_model(
            "CKAT",
            ds,
            epochs=6,
            ckat_config=cfg,
            sources=KnowledgeSources(uug=False, loc=False, dkg=False, md=False),
            best_epoch_selection=False,
        )
        full = run_single_model(
            "CKAT",
            ds,
            epochs=6,
            ckat_config=cfg,
            sources=KnowledgeSources.best(),
            best_epoch_selection=False,
        )
        assert full.recall >= 0.5 * bare.recall

    def test_recommendations_are_plausible(self):
        """Recommended items should over-represent the user's focus region
        relative to the catalog at large.

        Statistical at small scale: the margin depends on how concentrated
        the generated trace's region signal is for the heavy users, so the
        dataset seed is pinned to one with a solid effect size.
        """
        ds = load_dataset("ooi", scale="small", seed=0)
        ckg = ds.build_ckg(KnowledgeSources.best())
        model = CKAT(
            ds.split.train.num_users,
            ds.split.train.num_items,
            ckg,
            CKATConfig(dim=16, relation_dim=16, layer_dims=(16,), kg_steps_per_epoch=3),
            seed=0,
        )
        model.fit(ds.split.train, FitConfig(epochs=15, batch_size=256, lr=0.01, seed=0))
        heavy_users = np.argsort(-ds.split.train.user_degree())[:10]
        hits, total = 0, 0
        for u in heavy_users:
            focus = ds.population.user_focus_region[u]
            recs = model.recommend(int(u), k=10, exclude=ds.split.train.items_of_user(int(u)))
            hits += int((ds.catalog.object_region[recs] == focus).sum())
            total += len(recs)
        baseline = np.bincount(ds.catalog.object_region).max() / ds.catalog.num_objects
        assert hits / total > baseline
