"""Training-protocol tests: best-epoch checkpointing, schedules, budgets."""

import numpy as np
import pytest

from repro.experiments.runner import default_fit_config
from repro.models import BPRMF
from repro.models.base import FitConfig


class TestBestEpochCheckpointing:
    def test_best_snapshot_restored(self, ooi_split):
        """After fit with keep_best_metric, the model scores equal the best
        evaluation checkpoint, not the final epoch."""
        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=0)
        snapshots = []

        def callback():
            # Record current user embedding fingerprint alongside a fake
            # metric that peaks in the middle of training.
            snapshots.append(model.user_emb.data.copy())
            fake = [0.1, 0.9, 0.2, 0.15]
            return {"recall@20": fake[len(snapshots) - 1]}

        model.fit(
            ooi_split.train,
            FitConfig(
                epochs=4,
                batch_size=256,
                seed=0,
                eval_every=1,
                keep_best_metric="recall@20",
            ),
            eval_callback=callback,
        )
        # Best fake metric was at checkpoint 2 → parameters restored there.
        np.testing.assert_array_equal(model.user_emb.data, snapshots[1])

    def test_missing_metric_key_raises(self, ooi_split):
        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=0)
        with pytest.raises(KeyError):
            model.fit(
                ooi_split.train,
                FitConfig(
                    epochs=1,
                    batch_size=256,
                    seed=0,
                    eval_every=1,
                    keep_best_metric="nonexistent",
                ),
                eval_callback=lambda: {"recall@20": 0.5},
            )

    def test_no_checkpointing_without_metric(self, ooi_split):
        """Plain eval_every without keep_best leaves final-epoch params."""
        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=0)
        seen = []
        model.fit(
            ooi_split.train,
            FitConfig(epochs=2, batch_size=256, seed=0, eval_every=1),
            eval_callback=lambda: seen.append(model.user_emb.data.copy()) or {"m": 0.0},
        )
        # Final params equal the last checkpoint (training continued).
        np.testing.assert_array_equal(model.user_emb.data, seen[-1])


class TestDefaultBudgets:
    @pytest.mark.parametrize(
        "name", ["BPRMF", "FM", "NFM", "CKE", "CFKG", "RippleNet", "KGCN", "CKAT"]
    )
    def test_all_models_have_budgets(self, name):
        cfg = default_fit_config(name)
        assert cfg.epochs >= 30
        assert cfg.lr in (0.05, 0.01, 0.005, 0.001)  # the paper's grid

    def test_epoch_override(self):
        assert default_fit_config("CKAT", epochs=3).epochs == 3

    def test_seed_passthrough(self):
        assert default_fit_config("FM", seed=11).seed == 11


class TestFitLossAccounting:
    def test_loss_history_length(self, ooi_split):
        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=4, seed=0)
        result = model.fit(ooi_split.train, FitConfig(epochs=3, batch_size=256, seed=0))
        assert len(result.losses) == 3
        assert len(result.extra_losses) == 3
        assert result.seconds > 0

    def test_final_loss_property(self, ooi_split):
        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=4, seed=0)
        result = model.fit(ooi_split.train, FitConfig(epochs=2, batch_size=256, seed=0))
        assert result.final_loss == result.losses[-1]

    def test_empty_fit_result_nan(self):
        from repro.models.base import FitResult

        assert np.isnan(FitResult([], [], 0.0, []).final_loss)
