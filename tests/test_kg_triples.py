"""TripleStore and RelationRegistry tests."""

import numpy as np
import pytest

from repro.kg.triples import INVERSE_PREFIX, RelationRegistry, TripleStore


class TestRelationRegistry:
    def test_add_idempotent(self):
        reg = RelationRegistry()
        assert reg.add("a") == reg.add("a") == 0

    def test_id_name_roundtrip(self):
        reg = RelationRegistry(["x", "y"])
        assert reg.name_of(reg.id_of("y")) == "y"

    def test_contains(self):
        reg = RelationRegistry(["x"])
        assert "x" in reg and "z" not in reg

    def test_len(self):
        assert len(RelationRegistry(["a", "b"])) == 2

    def test_canonical_ids_excludes_inverses(self):
        reg = RelationRegistry(["a", INVERSE_PREFIX + "a", "b"])
        np.testing.assert_array_equal(reg.canonical_ids(), [0, 2])

    def test_copy_independent(self):
        reg = RelationRegistry(["a"])
        cp = reg.copy()
        cp.add("b")
        assert "b" not in reg


def small_store():
    store = TripleStore(num_entities=6)
    store.add_triples("likes", np.array([0, 1]), np.array([3, 4]))
    store.add_triples("near", np.array([3]), np.array([5]))
    return store


class TestTripleStore:
    def test_len_and_counts(self):
        store = small_store()
        assert len(store) == 3
        assert store.relation_counts() == {"likes": 2, "near": 1}

    def test_out_of_range_rejected(self):
        store = TripleStore(num_entities=3)
        with pytest.raises(ValueError):
            store.add_triples("r", np.array([0]), np.array([5]))
        with pytest.raises(ValueError):
            store.add_triples("r", np.array([-1]), np.array([0]))

    def test_length_mismatch_rejected(self):
        store = TripleStore(num_entities=3)
        with pytest.raises(ValueError):
            store.add_triples("r", np.array([0, 1]), np.array([0]))

    def test_negative_entities_count_rejected(self):
        with pytest.raises(ValueError):
            TripleStore(num_entities=-1)

    def test_triples_of_relation(self):
        store = small_store()
        h, t = store.triples_of_relation("likes")
        np.testing.assert_array_equal(h, [0, 1])
        np.testing.assert_array_equal(t, [3, 4])

    def test_degree(self):
        store = small_store()
        np.testing.assert_array_equal(store.degree(), [1, 1, 0, 1, 0, 0])

    def test_deduplicated(self):
        store = TripleStore(num_entities=3)
        store.add_triples("r", np.array([0, 0, 1]), np.array([1, 1, 2]))
        dd = store.deduplicated()
        assert len(dd) == 2

    def test_dedup_keeps_distinct_relations(self):
        store = TripleStore(num_entities=3)
        store.add_triples("r1", np.array([0]), np.array([1]))
        store.add_triples("r2", np.array([0]), np.array([1]))
        assert len(store.deduplicated()) == 2

    def test_with_inverses_adds_reverse(self):
        store = small_store()
        aug = store.with_inverses()
        assert len(aug) == 6
        h, t = aug.triples_of_relation(INVERSE_PREFIX + "likes")
        np.testing.assert_array_equal(np.sort(h), [3, 4])

    def test_with_inverses_symmetric_relation(self):
        store = TripleStore(num_entities=4)
        store.add_triples("interact", np.array([0]), np.array([1]))
        aug = store.with_inverses(symmetric=("interact",))
        assert aug.num_relations == 1
        h, t = aug.triples_of_relation("interact")
        assert len(h) == 2  # both directions, same relation id

    def test_with_inverses_idempotent_on_inverse_relations(self):
        store = small_store()
        aug = store.with_inverses()
        again = aug.with_inverses()
        assert len(again) == len(aug)

    def test_filter_relations(self):
        store = small_store()
        only = store.filter_relations(["near"])
        assert len(only) == 1
        assert only.relation_counts()["near"] == 1
        assert only.relation_counts().get("likes", 0) == 0

    def test_filter_unknown_relation_ok(self):
        store = small_store()
        assert len(store.filter_relations(["nonexistent"])) == 0

    def test_extend_merges_by_name(self):
        a = TripleStore(num_entities=4)
        a.add_triples("r", np.array([0]), np.array([1]))
        b = TripleStore(num_entities=4)
        b.add_triples("s", np.array([2]), np.array([3]))
        b.add_triples("r", np.array([1]), np.array([2]))
        a.extend(b)
        assert len(a) == 3
        assert a.relation_counts() == {"r": 2, "s": 1}

    def test_extend_mismatched_entities_rejected(self):
        a = TripleStore(num_entities=4)
        b = TripleStore(num_entities=5)
        with pytest.raises(ValueError):
            a.extend(b)

    def test_repr(self):
        assert "3 triples" in repr(small_store())
