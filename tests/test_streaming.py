"""Out-of-core dataset path: streamed traces, chunked builders, shard sampling.

The contracts locked here (see DESIGN.md §13):

- streamed generation is bit-identical across block sizes (block size is a
  pure performance knob) and round-trips through the artifact store;
- the chunked constructors (interactions, CSR adjacency) are bit-identical
  to their monolithic counterparts;
- the scale-exposed bugfixes stay fixed: empty-key membership probes return
  all-False, the int64 pair-key space is guarded at construction, and k-core
  filtering runs to a fixed point.
"""

import numpy as np
import pytest

from repro.data.interactions import (
    InteractionDataset,
    KCORE_MAX_ROUNDS,
    kcore_filter_masks,
    trace_to_interactions,
)
from repro.data.sampling import (
    BPRSampler,
    ShardedBPRSampler,
    _sorted_membership,
    check_pair_key_space,
)
from repro.data.streaming import (
    blocked_per_user_split,
    interaction_pair_chunks,
    streamed_trace_to_interactions,
)
from repro.facility.affinity import OOI_AFFINITY
from repro.facility.ooi import OOIConfig, build_ooi_catalog
from repro.facility.stream import (
    TRACE_BLOCK_KIND,
    TRACE_STREAM_SCHEMA,
    TraceReader,
    _block_config,
    load_trace_stream,
    stream_config,
    stream_trace,
)
from repro.facility.trace import QueryTrace
from repro.facility.users import build_user_population
from repro.kg.adjacency import CSRAdjacency
from repro.kg.ckg import build_interaction_adjacency
from repro.kg.subgraphs import INTERACT, EntitySpace, build_uig
from repro.models.base import FitConfig
from repro.models.bprmf import BPRMF
from repro.store import ArtifactStore

SEED = 11
BLOCK_SIZES = [1, 7, 10_000]


@pytest.fixture(scope="module")
def facility():
    catalog = build_ooi_catalog(OOIConfig(num_sites=30), seed=SEED)
    population = build_user_population(
        catalog, num_users=150, num_orgs=12, num_cities=6, seed=SEED + 1
    )
    return catalog, population


def _stream(facility, block_size, store=None, recipe=None, seed=SEED):
    catalog, population = facility
    return stream_trace(
        catalog,
        population,
        OOI_AFFINITY,
        seed=seed,
        queries_per_user_mean=25.0,
        block_size=block_size,
        store=store,
        recipe=recipe,
    )


@pytest.fixture(scope="module")
def reader(facility):
    return _stream(facility, block_size=64)


# ------------------------------------------------------------ stream generation
class TestStreamGeneration:
    def test_block_size_is_a_pure_perf_knob(self, facility, reader):
        """Identical bits at block sizes 1, 7 and 10⁴ (tentpole contract)."""
        base = reader.materialize()
        for block_size in BLOCK_SIZES:
            other = _stream(facility, block_size).materialize()
            np.testing.assert_array_equal(other.user_ids, base.user_ids)
            np.testing.assert_array_equal(other.object_ids, base.object_ids)
            np.testing.assert_array_equal(other.timestamps, base.timestamps)

    def test_user_major_layout(self, reader):
        """Blocks partition the user space; timestamps ascend within a user."""
        seen_hi = 0
        for block in reader.iter_blocks():
            assert block.user_lo == seen_hi
            seen_hi = block.user_hi
            if len(block):
                assert block.user_ids.min() >= block.user_lo
                assert block.user_ids.max() < block.user_hi
                assert np.all(np.diff(block.user_ids) >= 0)
                same_user = np.diff(block.user_ids) == 0
                assert np.all(np.diff(block.timestamps)[same_user] >= 0)
        assert seen_hi == reader.num_users

    def test_record_accounting(self, reader):
        assert reader.num_blocks == len(reader.records_per_block)
        assert reader.num_records == sum(len(b) for b in reader.iter_blocks())
        users, objects = zip(*reader.pair_chunks())
        assert sum(len(u) for u in users) == reader.num_records
        trace = reader.materialize()
        assert len(trace.user_ids) == reader.num_records
        assert trace.num_objects == reader.num_objects

    def test_different_seeds_differ(self, facility, reader):
        other = _stream(facility, block_size=64, seed=SEED + 99).materialize()
        base = reader.materialize()
        assert len(other.user_ids) != len(base.user_ids) or not np.array_equal(
            other.object_ids, base.object_ids
        )

    def test_rejects_bad_params(self, facility):
        catalog, population = facility
        with pytest.raises(ValueError, match="block_size"):
            _stream(facility, block_size=0)
        with pytest.raises(ValueError, match="queries_per_user_mean"):
            stream_trace(catalog, population, OOI_AFFINITY, queries_per_user_mean=0.0)
        with pytest.raises(ValueError, match="recipe"):
            stream_trace(catalog, population, OOI_AFFINITY, store=object())  # type: ignore[arg-type]

    def test_reader_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            TraceReader(10, 5, 4, np.zeros(3, np.int64))


# ----------------------------------------------------------- store-backed path
class TestStoreBackedStream:
    RECIPE = {"name": "unit", "seed": SEED}

    def _stream_with_store(self, facility, tmp_path, block_size=64):
        store = ArtifactStore(tmp_path / "cache")
        reader = _stream(facility, block_size, store=store, recipe=self.RECIPE)
        return store, reader

    def test_warm_reload_is_bit_identical(self, facility, tmp_path):
        store, built = self._stream_with_store(facility, tmp_path)
        warm = load_trace_stream(store, self.RECIPE, 64)
        assert warm is not None
        base, again = built.materialize(), warm.materialize()
        np.testing.assert_array_equal(again.user_ids, base.user_ids)
        np.testing.assert_array_equal(again.object_ids, base.object_ids)
        np.testing.assert_array_equal(again.timestamps, base.timestamps)

    def test_store_blocks_match_memory_blocks(self, facility, tmp_path):
        store, stored = self._stream_with_store(facility, tmp_path)
        mem = _stream(facility, block_size=64)
        for a, b in zip(stored.iter_blocks(), mem.iter_blocks()):
            np.testing.assert_array_equal(a.user_ids, b.user_ids)
            np.testing.assert_array_equal(a.object_ids, b.object_ids)

    def test_missing_manifest_is_a_miss(self, facility, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        assert load_trace_stream(store, self.RECIPE, 64) is None

    def test_corrupt_block_is_a_miss(self, facility, tmp_path):
        store, built = self._stream_with_store(facility, tmp_path)
        entry = store.entry_path(
            TRACE_BLOCK_KIND, _block_config(self.RECIPE, 64, 0), TRACE_STREAM_SCHEMA
        )
        payload = entry / "user_ids.npy"
        raw = payload.read_bytes()
        payload.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        assert load_trace_stream(store, self.RECIPE, 64) is None

    def test_wrong_block_size_is_a_miss(self, facility, tmp_path):
        store, _ = self._stream_with_store(facility, tmp_path, block_size=64)
        assert load_trace_stream(store, self.RECIPE, 32) is None


# -------------------------------------------------------- chunked constructors
class TestChunkedInteractions:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_bit_identical_to_monolithic(self, facility, block_size):
        reader = _stream(facility, block_size)
        mono = trace_to_interactions(
            reader.materialize(), min_user_interactions=3, min_item_interactions=2
        )
        chunked = streamed_trace_to_interactions(
            reader, min_user_interactions=3, min_item_interactions=2
        )
        assert len(chunked) > 0
        np.testing.assert_array_equal(chunked.user_ids, mono.user_ids)
        np.testing.assert_array_equal(chunked.item_ids, mono.item_ids)
        assert (chunked.num_users, chunked.num_items) == (mono.num_users, mono.num_items)

    def test_default_filter_matches_too(self, facility, reader):
        mono = trace_to_interactions(reader.materialize())
        chunked = streamed_trace_to_interactions(reader)
        np.testing.assert_array_equal(chunked.user_ids, mono.user_ids)
        np.testing.assert_array_equal(chunked.item_ids, mono.item_ids)

    def test_rejects_bad_minimums(self, reader):
        with pytest.raises(ValueError, match=">= 1"):
            streamed_trace_to_interactions(reader, min_user_interactions=0)

    def test_pair_chunk_views_cover_dataset(self, facility, reader):
        data = streamed_trace_to_interactions(reader)
        for users_per_chunk in (1, 17, 10_000):
            chunks = list(interaction_pair_chunks(data, users_per_chunk))
            users = np.concatenate([u for u, _ in chunks])
            items = np.concatenate([i for _, i in chunks])
            np.testing.assert_array_equal(users, data.user_ids)
            np.testing.assert_array_equal(items, data.item_ids)
        with pytest.raises(ValueError, match="users_per_chunk"):
            list(interaction_pair_chunks(data, 0))


def _divergence_trace():
    """A trace where one filter pass is not enough (satellite regression).

    With ``min_user=2, min_item=2``: the first item pass drops item 0
    (degree 1), the first user pass then drops users 0 and 2 — which lowers
    items 1 and 2 to degree 1, *still violating* the item constraint.  The
    fixed point must continue until only the stable clique
    ``{u3, u4} × {d=3, e=4}`` survives.
    """
    users = np.array([0, 0, 1, 1, 2, 3, 3, 4, 4], dtype=np.int64)
    items = np.array([0, 1, 1, 2, 2, 3, 4, 3, 4], dtype=np.int64)
    stamps = np.arange(len(users), dtype=np.float64)
    return QueryTrace(users, items, stamps, num_users=5, num_objects=5)


class TestKCoreFixedPoint:
    def test_single_pass_leaves_violations_fixed_point_does_not(self):
        trace = _divergence_trace()
        data = trace_to_interactions(trace, min_user_interactions=2, min_item_interactions=2)
        assert data.item_degree()[data.item_degree() > 0].min() >= 2
        assert data.user_degree()[data.user_degree() > 0].min() >= 2
        np.testing.assert_array_equal(data.user_ids, [3, 3, 4, 4])
        np.testing.assert_array_equal(data.item_ids, [3, 4, 3, 4])

    def test_masks_converge_to_stable_core(self):
        trace = _divergence_trace()
        pairs = lambda: iter([(trace.user_ids, trace.object_ids)])  # noqa: E731
        user_keep, item_keep = kcore_filter_masks(pairs, 5, 5, 2, 2)
        np.testing.assert_array_equal(user_keep, [False, False, False, True, True])
        np.testing.assert_array_equal(item_keep, [False, False, False, True, True])

    def test_max_rounds_bound_is_loud(self):
        trace = _divergence_trace()
        pairs = lambda: iter([(trace.user_ids, trace.object_ids)])  # noqa: E731
        with pytest.raises(RuntimeError, match="did not converge"):
            kcore_filter_masks(pairs, 5, 5, 2, 2, max_rounds=1)
        assert KCORE_MAX_ROUNDS >= 10_000

    def test_min_item_one_matches_historical_single_pass(self, reader):
        """The default filter's fixed point is the old single pass (bit-compat)."""
        trace = reader.materialize()
        users, items = trace.unique_pairs()
        degree = np.bincount(users, minlength=trace.num_users)
        keep = degree[users] >= 5
        data = trace_to_interactions(trace, min_user_interactions=5)
        expect = InteractionDataset(users[keep], items[keep], trace.num_users, trace.num_objects)
        np.testing.assert_array_equal(data.user_ids, expect.user_ids)
        np.testing.assert_array_equal(data.item_ids, expect.item_ids)

    def test_streamed_path_applies_same_fixed_point(self, facility):
        reader = _stream(facility, block_size=16)
        mono = trace_to_interactions(
            reader.materialize(), min_user_interactions=4, min_item_interactions=3
        )
        chunked = streamed_trace_to_interactions(
            reader, min_user_interactions=4, min_item_interactions=3
        )
        np.testing.assert_array_equal(chunked.user_ids, mono.user_ids)
        np.testing.assert_array_equal(chunked.item_ids, mono.item_ids)


# ------------------------------------------------------------- chunked CSR/KG
def _interaction_space(data):
    space = EntitySpace()
    space.add_block("user", data.num_users)
    space.add_block("item", data.num_items)
    return space


class TestChunkedAdjacency:
    @pytest.fixture(scope="class")
    def data(self, facility):
        return streamed_trace_to_interactions(_stream(facility, block_size=64))

    @pytest.mark.parametrize("users_per_chunk", [1, 13, 10_000])
    def test_bit_identical_to_monolithic(self, data, users_per_chunk):
        space = _interaction_space(data)
        mono = CSRAdjacency(
            build_uig(space, data.user_ids, data.item_ids).with_inverses(symmetric=(INTERACT,))
        )
        chunked = build_interaction_adjacency(
            space, lambda: interaction_pair_chunks(data, users_per_chunk)
        )
        np.testing.assert_array_equal(chunked.heads, mono.heads)
        np.testing.assert_array_equal(chunked.tails, mono.tails)
        np.testing.assert_array_equal(chunked.rels, mono.rels)
        np.testing.assert_array_equal(chunked.offsets, mono.offsets)

    def test_empty_chunks_tolerated(self):
        empty = np.zeros(0, dtype=np.int64)
        chunks = lambda: iter(  # noqa: E731
            [
                (np.array([2, 0]), np.array([0, 0]), np.array([1, 1])),
                (empty, empty, empty),
                (np.array([0]), np.array([0]), np.array([2])),
            ]
        )
        adj = CSRAdjacency.from_edge_chunks(chunks, num_entities=3, num_relations=1)
        np.testing.assert_array_equal(adj.heads, [0, 0, 2])
        np.testing.assert_array_equal(adj.tails, [1, 2, 1])

    def test_changed_chunks_between_passes_is_loud(self):
        state = {"calls": 0}

        def chunks():
            state["calls"] += 1
            n = 3 if state["calls"] == 1 else 2
            yield (
                np.zeros(n, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
            )

        with pytest.raises(ValueError, match="changed between passes"):
            CSRAdjacency.from_edge_chunks(chunks, num_entities=2, num_relations=1)

    def test_range_validation(self):
        one = lambda h, r, t: lambda: iter(  # noqa: E731
            [(np.array([h]), np.array([r]), np.array([t]))]
        )
        with pytest.raises(ValueError, match="head"):
            CSRAdjacency.from_edge_chunks(one(5, 0, 0), num_entities=3, num_relations=1)
        with pytest.raises(ValueError, match="tail"):
            CSRAdjacency.from_edge_chunks(one(0, 0, 5), num_entities=3, num_relations=1)
        with pytest.raises(ValueError, match="relation"):
            CSRAdjacency.from_edge_chunks(one(0, 2, 0), num_entities=3, num_relations=1)


# ------------------------------------------------------- sampler regressions
class TestMembershipProbe:
    def test_empty_keys_are_all_false(self):
        """Satellite regression: empty sorted array must not fancy-index."""
        result = _sorted_membership(np.zeros(0, np.int64), np.array([0, 5, 9]))
        assert result.dtype == bool
        np.testing.assert_array_equal(result, [False, False, False])

    def test_nonempty_membership(self):
        keys = np.array([2, 5, 9], dtype=np.int64)
        np.testing.assert_array_equal(
            _sorted_membership(keys, np.array([0, 2, 5, 8, 9, 11])),
            [False, True, True, False, True, False],
        )

    def test_sharded_empty_shard_is_all_false(self):
        # Users 4..7 have no interactions → shard 2 (users_per_shard=2) empty.
        data = InteractionDataset(
            np.array([0, 0, 1, 8, 9]), np.array([0, 1, 0, 1, 0]), num_users=10, num_items=3
        )
        sampler = ShardedBPRSampler(data, users_per_shard=2)
        assert sampler.shard_keys(2).size == 0
        probe = sampler.shard_is_positive(2, np.array([4, 5]), np.array([0, 1]))
        np.testing.assert_array_equal(probe, [False, False])
        # Non-empty shards still answer correctly.
        assert sampler.shard_is_positive(0, np.array([0]), np.array([1]))[0]
        assert not sampler.shard_is_positive(0, np.array([0]), np.array([2]))[0]


class TestKeySpaceGuard:
    def test_guard_rejects_overflowing_product(self):
        with pytest.raises(ValueError, match="overflows int64"):
            check_pair_key_space(2**21, 2**43)
        # 2**63 keys: the largest key is 2**63 - 1 — exactly representable.
        check_pair_key_space(2**20, 2**43)

    def test_samplers_fail_at_construction(self):
        data = InteractionDataset(
            np.array([0]), np.array([0]), num_users=2**21, num_items=2**43
        )
        with pytest.raises(ValueError, match="overflows int64"):
            BPRSampler(data)
        with pytest.raises(ValueError, match="overflows int64"):
            ShardedBPRSampler(data)

    def test_streamed_interactions_guarded_too(self):
        reader = TraceReader(
            num_users=2**21,
            num_objects=2**43,
            block_size=4,
            records_per_block=np.zeros(1, np.int64),
            blocks=[],
        )
        with pytest.raises(ValueError, match="overflows int64"):
            streamed_trace_to_interactions(reader)


class TestShardedSampler:
    @pytest.fixture(scope="class")
    def train(self, facility):
        reader = _stream(facility, block_size=64)
        return blocked_per_user_split(
            streamed_trace_to_interactions(reader), seed=SEED
        ).train

    def test_epoch_covers_every_interaction_once(self, train):
        sampler = ShardedBPRSampler(train, users_per_shard=16)
        picked = []
        for users, pos, neg in sampler.epoch_batches(batch_size=32, seed=3):
            assert len(users) == len(pos) == len(neg)
            picked.append(users * np.int64(train.num_items) + pos)
        picked = np.sort(np.concatenate(picked))
        expected = np.sort(train.user_ids * np.int64(train.num_items) + train.item_ids)
        np.testing.assert_array_equal(picked, expected)

    def test_negatives_are_never_positives(self, train):
        sampler = ShardedBPRSampler(train, users_per_shard=16)
        reference = BPRSampler(train)
        for users, _, neg in sampler.epoch_batches(batch_size=64, seed=5):
            assert not reference.is_positive(users, neg).any()

    def test_shard_geometry(self, train):
        sampler = ShardedBPRSampler(train, users_per_shard=16)
        assert sampler.num_shards == -(-train.num_users // 16)
        lo, hi = sampler.shard_users(sampler.num_shards - 1)
        assert hi == train.num_users
        with pytest.raises(IndexError):
            sampler.shard_users(sampler.num_shards)
        with pytest.raises(ValueError, match="users_per_shard"):
            ShardedBPRSampler(train, users_per_shard=0)

    def test_fit_accepts_injected_sampler(self, train):
        model = BPRMF(train.num_users, train.num_items, dim=4, seed=SEED)
        sampler = ShardedBPRSampler(train, users_per_shard=32)
        result = model.fit(
            train, FitConfig(epochs=2, batch_size=64, seed=SEED), sampler=sampler
        )
        assert len(result.losses) == 2
        assert np.isfinite(result.losses).all()


# -------------------------------------------------------------- blocked split
class TestBlockedSplit:
    @pytest.fixture(scope="class")
    def data(self, facility):
        return streamed_trace_to_interactions(_stream(facility, block_size=64))

    def test_per_user_guarantees(self, data):
        split = blocked_per_user_split(data, train_fraction=0.8, seed=SEED)
        degree = data.user_degree()
        n_train = np.where(
            degree <= 1,
            degree,
            np.minimum(np.ceil(degree * 0.8).astype(np.int64), degree - 1),
        )
        np.testing.assert_array_equal(split.train.user_degree(), n_train)
        np.testing.assert_array_equal(split.test.user_degree(), degree - n_train)

    def test_split_partitions_dataset(self, data):
        split = blocked_per_user_split(data, seed=SEED)
        key = lambda d: np.sort(  # noqa: E731
            d.user_ids * np.int64(d.num_items) + d.item_ids
        )
        merged = np.sort(np.concatenate([key(split.train), key(split.test)]))
        np.testing.assert_array_equal(merged, key(data))
        assert np.intersect1d(key(split.train), key(split.test)).size == 0

    def test_singletons_go_to_train(self):
        data = InteractionDataset(
            np.array([0, 1, 1, 1]), np.array([2, 0, 1, 2]), num_users=2, num_items=3
        )
        split = blocked_per_user_split(data, seed=0)
        assert split.train.user_degree()[0] == 1
        assert split.test.user_degree()[0] == 0

    def test_deterministic_in_seed(self, data):
        a = blocked_per_user_split(data, seed=3)
        b = blocked_per_user_split(data, seed=3)
        c = blocked_per_user_split(data, seed=4)
        np.testing.assert_array_equal(a.train.item_ids, b.train.item_ids)
        assert not np.array_equal(a.train.item_ids, c.train.item_ids)

    def test_rejects_bad_fraction(self, data):
        with pytest.raises(ValueError, match="train_fraction"):
            blocked_per_user_split(data, train_fraction=1.0)


# ----------------------------------------------------------- pipeline staging
class TestPipelineTraceStream:
    def _pipe(self, cache_dir=None):
        from repro.pipeline import DatasetPipeline

        return DatasetPipeline("ooi", scale="small", seed=7, cache_dir=cache_dir)

    def test_keys_depend_on_block_size_and_seed(self):
        from repro.pipeline import DatasetPipeline

        a, b = self._pipe(), self._pipe()
        assert a.stage_key("trace_stream") == b.stage_key("trace_stream")
        assert a.stage_key("trace_stream", block_size=512) != a.stage_key("trace_stream")
        other = DatasetPipeline("ooi", scale="small", seed=8)
        assert other.stage_key("trace_stream") != a.stage_key("trace_stream")
        assert a.stage_key("trace_stream") != a.stage_key("trace")

    def test_cold_warm_memo_counters(self, tmp_path):
        cache = tmp_path / "cache"
        pipe = self._pipe(cache)
        reader = pipe.trace_stream(block_size=512)
        assert pipe.stage_counters()["trace_stream"]["built"] == 1
        assert pipe.trace_stream(block_size=512) is reader
        assert pipe.stage_counters()["trace_stream"]["memo"] == 1

        warm = self._pipe(cache)
        again = warm.trace_stream(block_size=512)
        counts = warm.stage_counters()["trace_stream"]
        assert counts["loaded"] == 1 and counts["built"] == 0
        base = reader.materialize()
        reload = again.materialize()
        np.testing.assert_array_equal(reload.user_ids, base.user_ids)
        np.testing.assert_array_equal(reload.object_ids, base.object_ids)

    def test_corrupt_block_degrades_to_rebuild(self, tmp_path):
        from repro.facility.stream import TRACE_STREAM_KIND

        cache = tmp_path / "cache"
        pipe = self._pipe(cache)
        base = pipe.trace_stream(block_size=512).materialize()

        entry = pipe.store.entry_path(
            TRACE_BLOCK_KIND,
            _block_config(pipe.recipe(), 512, 0),
            TRACE_STREAM_SCHEMA,
        )
        payload = entry / "object_ids.npy"
        raw = payload.read_bytes()
        payload.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        assert pipe.store.entry_path(
            TRACE_STREAM_KIND, stream_config(pipe.recipe(), 512), TRACE_STREAM_SCHEMA
        ).exists()

        rebuilt = self._pipe(cache)
        again = rebuilt.trace_stream(block_size=512).materialize()
        assert rebuilt.stage_counters()["trace_stream"]["built"] == 1
        np.testing.assert_array_equal(again.user_ids, base.user_ids)
        np.testing.assert_array_equal(again.object_ids, base.object_ids)


# -------------------------------------------------------- chunked segment sum
class TestShardedSegmentSumChunking:
    def test_edge_chunk_is_bit_identical(self):
        from repro.parallel.partition import EdgePartition
        from repro.parallel.sharded import sharded_segment_sum

        rng = np.random.default_rng(SEED)
        num_entities, num_edges, dim = 40, 300, 6
        heads = rng.integers(0, num_entities, num_edges)
        tails = rng.integers(0, num_entities, num_edges)
        weights = rng.random(num_edges)
        emb = rng.random((num_entities, dim))
        partition = EdgePartition(
            num_shards=3, shard_of_edge=rng.integers(0, 3, num_edges), strategy="test"
        )
        base = sharded_segment_sum(heads, tails, weights, emb, partition)
        for edge_chunk in (1, 7, 10_000):
            chunked = sharded_segment_sum(
                heads, tails, weights, emb, partition, edge_chunk=edge_chunk
            )
            np.testing.assert_array_equal(chunked, base)
        with pytest.raises(ValueError, match="edge_chunk"):
            sharded_segment_sum(heads, tails, weights, emb, partition, edge_chunk=0)


# ------------------------------------------------------------- scale pipeline
class TestScalePipelineSmoke:
    def test_tiny_end_to_end(self, tmp_path):
        from repro.experiments.scale import monolithic_lower_bound_bytes, run_scale_pipeline

        stats = run_scale_pipeline(
            num_users=600,
            num_orgs=30,
            num_cities=10,
            num_sites=30,
            queries_per_user_mean=20.0,
            min_user_interactions=2,
            block_size=128,
            users_per_shard=128,
            dim=4,
            batch_size=256,
            epochs=1,
            eval_users=100,
            num_eval_shards=2,
            cache_dir=str(tmp_path / "cache"),
            seed=SEED,
        )
        assert stats["num_interactions"] > 0
        assert set(stats["phases"]) == {
            "facility",
            "trace_stream",
            "interactions",
            "split",
            "train",
            "eval",
        }
        assert stats["peak_rss_mb"] > 0
        assert all(np.isfinite(v) for v in stats["metrics"].values())
        assert not stats["phases"]["trace_stream"]["warm"]
        # Warm rerun reuses the persisted stream and keeps the numbers.
        again = run_scale_pipeline(
            num_users=600,
            num_orgs=30,
            num_cities=10,
            num_sites=30,
            queries_per_user_mean=20.0,
            min_user_interactions=2,
            block_size=128,
            users_per_shard=128,
            dim=4,
            batch_size=256,
            epochs=1,
            eval_users=100,
            num_eval_shards=2,
            cache_dir=str(tmp_path / "cache"),
            seed=SEED,
        )
        assert again["phases"]["trace_stream"]["warm"]
        assert again["num_interactions"] == stats["num_interactions"]
        assert again["metrics"] == stats["metrics"]
        assert monolithic_lower_bound_bytes(10**6, 3287, 0) > 20 * 2**30
