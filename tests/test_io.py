"""Persistence tests: traces, interactions, model checkpoints."""

import numpy as np
import pytest

from repro.io import (
    load_interactions,
    load_parameters,
    load_trace,
    save_interactions,
    save_parameters,
    save_trace,
)
from repro.io.checkpoints import parameter_keys
from repro.models import BPRMF


class TestTraceIO:
    def test_roundtrip(self, ooi_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(path, ooi_trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.user_ids, ooi_trace.user_ids)
        np.testing.assert_array_equal(loaded.object_ids, ooi_trace.object_ids)
        np.testing.assert_array_equal(loaded.timestamps, ooi_trace.timestamps)
        assert loaded.num_users == ooi_trace.num_users
        assert loaded.num_objects == ooi_trace.num_objects

    def test_wrong_format_rejected(self, ooi_interactions, tmp_path):
        path = tmp_path / "x.npz"
        save_interactions(path, ooi_interactions)
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError):
            load_trace(path)


class TestInteractionIO:
    def test_roundtrip(self, ooi_interactions, tmp_path):
        path = tmp_path / "inter.npz"
        save_interactions(path, ooi_interactions)
        loaded = load_interactions(path)
        np.testing.assert_array_equal(loaded.user_ids, ooi_interactions.user_ids)
        np.testing.assert_array_equal(loaded.item_ids, ooi_interactions.item_ids)
        assert loaded.num_items == ooi_interactions.num_items

    def test_wrong_format_rejected(self, ooi_trace, tmp_path):
        path = tmp_path / "y.npz"
        save_trace(path, ooi_trace)
        with pytest.raises(ValueError, match="format"):
            load_interactions(path)


class TestCheckpointIO:
    def test_roundtrip_restores_exactly(self, tmp_path):
        model = BPRMF(10, 20, dim=8, seed=0)
        original = [p.data.copy() for p in model.parameters()]
        path = tmp_path / "model.npz"
        save_parameters(path, model)
        for p in model.parameters():
            p.data += 1.0
        load_parameters(path, model)
        for p, orig in zip(model.parameters(), original):
            np.testing.assert_array_equal(p.data, orig)

    def test_shape_mismatch_rejected(self, tmp_path):
        small = BPRMF(10, 20, dim=8, seed=0)
        big = BPRMF(10, 20, dim=16, seed=0)
        path = tmp_path / "m.npz"
        save_parameters(path, small)
        with pytest.raises(ValueError, match="shape"):
            load_parameters(path, big)

    def test_parameter_set_mismatch_rejected(self, tmp_path, ooi_ckg_best, ooi_split):
        from repro.models import CKE

        bprmf = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=0)
        cke = CKE(ooi_split.train.num_users, ooi_split.train.num_items, ooi_ckg_best, dim=8, seed=0)
        path = tmp_path / "m.npz"
        save_parameters(path, bprmf)
        with pytest.raises(ValueError, match="mismatch"):
            load_parameters(path, cke)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "nope.npz"
        np.savez(path, a=np.zeros(2))
        with pytest.raises(ValueError, match="checkpoint"):
            load_parameters(path, BPRMF(3, 3, dim=2))

    def test_parameter_keys_unique(self):
        from repro.autograd import Parameter

        params = [Parameter(np.zeros(1), name="w"), Parameter(np.zeros(1), name="w")]
        keys = parameter_keys(params)
        assert len(set(keys)) == 2

    def test_scoring_identical_after_reload(self, tmp_path, ooi_split):
        from repro.models.base import FitConfig

        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=0)
        model.fit(ooi_split.train, FitConfig(epochs=2, batch_size=256, seed=0))
        before = model.score_users(np.array([0, 1]))
        path = tmp_path / "trained.npz"
        save_parameters(path, model)
        fresh = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=99)
        load_parameters(path, fresh)
        np.testing.assert_allclose(fresh.score_users(np.array([0, 1])), before)
