"""Initializer tests: fan computation and distribution statistics."""

import numpy as np

from repro.autograd.init import fan_in_out, normal_init, xavier_normal, xavier_uniform


class TestFanInOut:
    def test_2d(self):
        assert fan_in_out((10, 20)) == (10, 20)

    def test_1d(self):
        assert fan_in_out((7,)) == (7, 7)

    def test_0d(self):
        assert fan_in_out(()) == (1, 1)

    def test_4d_conv_like(self):
        fan_in, fan_out = fan_in_out((8, 4, 3, 3))
        assert fan_in == 4 * 9
        assert fan_out == 8 * 9


class TestXavierUniform:
    def test_bound(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((100, 100), rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound

    def test_mean_near_zero(self):
        rng = np.random.default_rng(1)
        w = xavier_uniform((200, 200), rng)
        assert abs(w.mean()) < 0.005

    def test_gain_scales(self):
        rng = np.random.default_rng(2)
        w1 = xavier_uniform((50, 50), np.random.default_rng(2))
        w2 = xavier_uniform((50, 50), np.random.default_rng(2), gain=2.0)
        np.testing.assert_allclose(w2, 2.0 * w1)

    def test_deterministic_given_rng(self):
        a = xavier_uniform((5, 5), np.random.default_rng(7))
        b = xavier_uniform((5, 5), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestXavierNormal:
    def test_std(self):
        rng = np.random.default_rng(3)
        w = xavier_normal((300, 300), rng)
        expected = np.sqrt(2.0 / 600)
        assert abs(w.std() - expected) / expected < 0.05

    def test_shape(self):
        rng = np.random.default_rng(4)
        assert xavier_normal((3, 4, 5), rng).shape == (3, 4, 5)


class TestNormalInit:
    def test_std_parameter(self):
        rng = np.random.default_rng(5)
        w = normal_init((500, 100), rng, std=0.02)
        assert abs(w.std() - 0.02) / 0.02 < 0.05
