"""Interprocedural graph-lint tests: fixture packages with ``# expect:``
markers pin each RPL011–RPL014 finding to an exact location, clean twins
must stay silent, suppressions work for every graph code, the summary cache
hits warm and invalidates on change, and the baseline ratchet absorbs known
findings while failing new ones."""

import dataclasses
import json
import pathlib
import re
import shutil

import pytest

from repro.analysis.lint.graph import (
    GraphConfig,
    apply_baseline,
    graph_codes,
    load_baseline,
    run_graph_lint,
    summarize_module,
    write_baseline,
)
from repro.analysis.lint.graph.program import ProgramGraph
from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint" / "graph"
PROJ = FIXTURES / "proj"

#: Path/module policy matching the fixture package instead of src/repro.
FIXTURE_CONFIG = GraphConfig(
    exempt_paths=(),
    taint_sink_paths=("models/", "serving/", "eval/"),
    dtype_sink_paths=("models/",),
    async_paths=("serving/",),
    funnel_consumer_paths=("models/", "eval/", "serving/"),
    funnel_modules=("proj.kernels.dispatch",),
    kernel_backend_modules=("proj.kernels.backend",),
)

_EXPECT = re.compile(r"#\s*expect:\s*(RPL\d+)")
_DISABLE = re.compile(r"#\s*reprolint:\s*disable=(RPL\d+)")


def _markers(root, pattern=_EXPECT):
    out = set()
    for p in sorted(pathlib.Path(root).rglob("*.py")):
        for i, line in enumerate(p.read_text(encoding="utf-8").splitlines(), 1):
            m = pattern.search(line)
            if m:
                out.add((str(p).replace("\\", "/"), i, m.group(1)))
    return out


def _run(root=PROJ, cache=None, select=None):
    config = FIXTURE_CONFIG
    if select is not None:
        config = dataclasses.replace(config, select=frozenset(select))
    return run_graph_lint([root], config=config, cache_path=cache)


# -------------------------------------------------------------- exact firing
def test_fixture_findings_match_expect_markers_exactly():
    rep = _run()
    got = {(f.path, f.line, f.code) for f in rep.findings}
    assert got == _markers(PROJ)


@pytest.mark.parametrize("code", sorted(["RPL011", "RPL012", "RPL013", "RPL014"]))
def test_each_rule_has_true_positive_fixture(code):
    rep = _run(select={code})
    got = {(f.path, f.line, f.code) for f in rep.findings}
    expected = {m for m in _markers(PROJ) if m[2] == code}
    assert expected, f"fixture tree has no {code} marker"
    assert got == expected


def test_clean_twins_stay_silent():
    rep = _run()
    reported_lines = {(f.path, f.line) for f in rep.findings}
    # Seeded / uniform / funneled twins sit in the same files; every finding
    # must be on a marked line, so twins are provably silent.
    for path, line, _ in {(f.path, f.line, f.code) for f in rep.findings}:
        assert (path, line) in {(m[0], m[1]) for m in _markers(PROJ)}
    assert len(reported_lines) == len(_markers(PROJ))


def test_findings_sorted_and_carry_end_col():
    rep = _run()
    assert rep.findings == sorted(rep.findings)
    assert all(f.end_col > f.col for f in rep.findings)


# -------------------------------------------------------------- suppressions
def test_suppression_escape_hatch_works_for_every_graph_code(tmp_path):
    """Each fixture carries a suppressed twin per code; stripping the
    disable comments must make those exact lines fire."""
    suppressed = _markers(PROJ, _DISABLE)
    assert {m[2] for m in suppressed} == set(graph_codes())
    rep = _run()
    reported = {(f.path, f.line) for f in rep.findings}
    for path, line, _ in suppressed:
        assert (path, line) not in reported

    stripped = tmp_path / "proj"
    shutil.copytree(PROJ, stripped)
    for p in stripped.rglob("*.py"):
        p.write_text(
            re.sub(r"\s*# reprolint: disable=RPL\d+", "", p.read_text(encoding="utf-8")),
            encoding="utf-8",
        )
    rep2 = _run(root=stripped)
    reported2 = {(f.path, f.line, f.code) for f in rep2.findings}
    for path, line, code in suppressed:
        moved = (str(stripped / pathlib.Path(path).relative_to(PROJ)).replace("\\", "/"), line, code)
        assert moved in reported2, f"stripping the disable did not surface {moved}"


# -------------------------------------------------------------------- cache
def test_warm_run_hits_cache_and_agrees(tmp_path):
    cache = tmp_path / "cache.json"
    cold = _run(cache=cache)
    warm = _run(cache=cache)
    assert cold.cache_misses == cold.files_checked and cold.cache_hits == 0
    assert warm.cache_hits == warm.files_checked and warm.cache_misses == 0
    assert warm.findings == cold.findings


def test_cache_invalidates_only_changed_files(tmp_path):
    tree = tmp_path / "proj"
    shutil.copytree(PROJ, tree)
    cache = tmp_path / "cache.json"
    _run(root=tree, cache=cache)
    target = tree / "models" / "net.py"
    target.write_text(
        target.read_text(encoding="utf-8") + "\n\nEXTRA = 1\n", encoding="utf-8"
    )
    rep = _run(root=tree, cache=cache)
    assert rep.cache_misses == 1
    assert rep.cache_hits == rep.files_checked - 1


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    rep = _run(cache=cache)
    assert rep.cache_misses == rep.files_checked
    # and the run repaired the cache for next time
    assert json.loads(cache.read_text(encoding="utf-8"))["entries"]


# ------------------------------------------------------------------ baseline
def test_baseline_absorbs_known_findings_and_reports_stale(tmp_path):
    rep = _run()
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, rep.findings)
    entries = load_baseline(baseline)
    new, matched, stale = apply_baseline(rep.findings, entries)
    assert new == [] and matched == len(rep.findings) and stale == []

    # A finding missing from the baseline fails the run.
    new2, _, _ = apply_baseline(rep.findings, entries[1:])
    assert len(new2) == 1

    # A fixed finding leaves its entry stale (reported, not failing).
    new3, matched3, stale3 = apply_baseline(rep.findings[1:], entries)
    assert new3 == [] and matched3 == len(rep.findings) - 1 and len(stale3) == 1


def test_malformed_baseline_fails_loudly(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{}", encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(bad)
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(bad)


# ------------------------------------------------------------------- engine
def test_unknown_graph_select_raises():
    with pytest.raises(ValueError):
        _run(select={"RPL999"})


def test_module_naming_walks_up_through_init_files():
    summaries = {
        str(p).replace("\\", "/"): summarize_module(p.read_text(encoding="utf-8"), str(p))
        for p in sorted(PROJ.rglob("*.py"))
    }
    graph = ProgramGraph(summaries)
    net = str(PROJ / "models" / "net.py").replace("\\", "/")
    assert graph.module_name(net) == "proj.models.net"
    assert "proj.models.net.fit" in graph.functions
    assert "proj.serving.app.Counter" in graph.classes
    assert graph.classes["proj.serving.app.Counter"]["lock_attrs"] == ["_lock"]


def test_summary_is_json_roundtrippable():
    source = (PROJ / "serving" / "app.py").read_text(encoding="utf-8")
    summary = summarize_module(source, "proj/serving/app.py")
    assert json.loads(json.dumps(summary)) == summary
    handler = summary["functions"]["handler"]
    assert handler["async"] is True
    hop_calls = [c for c in summary["functions"]["handler_ok"]["calls"] if c.get("hop")]
    assert hop_calls, "asyncio.to_thread call not marked as executor hop"


# ------------------------------------------------------------------- CLI
def test_cli_graph_flag_reports_findings(capsys):
    code = main(["lint", "--graph", "--no-cache", str(PROJ)])
    out = capsys.readouterr().out
    # Default config exempts fixtures/ paths: the fixture tree is clean under
    # the shipped policy (that's what keeps `make lint` quiet), exit 0.
    assert code == 0
    assert "clean" in out


def test_cli_graph_on_src_tree_is_clean(capsys):
    assert main(["lint", "--graph", "--no-cache", str(REPO_ROOT / "src")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_baseline_ratchet_roundtrip(tmp_path, capsys):
    # A blocking sleep under serving/ that the default policy does flag.
    tree = tmp_path / "mini" / "serving"
    tree.mkdir(parents=True)
    (tmp_path / "mini" / "__init__.py").write_text("", encoding="utf-8")
    (tree / "__init__.py").write_text("", encoding="utf-8")
    (tree / "app.py").write_text(
        "import time\n\n\nasync def handler():\n    time.sleep(1)\n",
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.json"
    assert main(["lint", "--graph", "--no-cache", str(tmp_path / "mini")]) == 1
    assert "RPL013" in capsys.readouterr().out

    assert (
        main(
            [
                "lint",
                "--graph",
                "--no-cache",
                "--write-baseline",
                str(baseline),
                str(tmp_path / "mini"),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert load_baseline(baseline)

    assert (
        main(
            [
                "lint",
                "--graph",
                "--no-cache",
                "--baseline",
                str(baseline),
                str(tmp_path / "mini"),
            ]
        )
        == 0
    )
    assert "clean" in capsys.readouterr().out

    # Fix the finding: the baseline entry goes stale but does not fail.
    (tree / "app.py").write_text(
        "import asyncio\n\n\nasync def handler():\n    await asyncio.sleep(1)\n",
        encoding="utf-8",
    )
    assert (
        main(
            [
                "lint",
                "--graph",
                "--no-cache",
                "--baseline",
                str(baseline),
                str(tmp_path / "mini"),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "no longer matches" in captured.err


def test_cli_select_splits_between_engines(tmp_path, capsys):
    p = tmp_path / "serving"
    p.mkdir()
    (tmp_path / "__init__.py").write_text("", encoding="utf-8")
    (p / "__init__.py").write_text("", encoding="utf-8")
    # One lexical violation (pickle) and one graph violation (blocking call).
    (p / "app.py").write_text(
        "import pickle\nimport time\n\n\nasync def handler():\n    time.sleep(1)\n",
        encoding="utf-8",
    )
    assert main(["lint", "--graph", "--no-cache", "--select", "RPL005,RPL013", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPL005" in out and "RPL013" in out
    assert main(["lint", "--graph", "--no-cache", "--select", "RPL013", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPL005" not in out and "RPL013" in out
