"""Baseline model tests: construction, training signal, scoring, recommend.

Every model gets the same battery: loss decreases over epochs on the small
OOI dataset, scores have the right shape, recommend() respects exclusions,
and training is deterministic at fixed seed.
"""

import numpy as np
import pytest

from repro.models import (
    BPRMF,
    CFKG,
    CKE,
    FM,
    KGCN,
    NFM,
    ItemFeatureTable,
    RippleNet,
)
from repro.models.base import FitConfig, batch_l2


@pytest.fixture(scope="module")
def feats(ooi_ckg_best):
    return ItemFeatureTable(ooi_ckg_best)


def model_factories(split, ckg, feats):
    M, N = split.train.num_users, split.train.num_items
    return {
        "BPRMF": lambda: BPRMF(M, N, dim=16, seed=0),
        "FM": lambda: FM(M, N, feats, dim=16, seed=0),
        "NFM": lambda: NFM(M, N, feats, dim=16, hidden_dim=16, seed=0),
        "CKE": lambda: CKE(M, N, ckg, dim=16, kg_steps_per_epoch=3, seed=0),
        "CFKG": lambda: CFKG(M, N, ckg, dim=16, kg_steps_per_epoch=3, seed=0),
        "RippleNet": lambda: RippleNet(M, N, ckg, split.train, dim=8, n_memory=8, seed=0),
        "KGCN": lambda: KGCN(M, N, ckg, dim=16, neighbor_size=4, seed=0),
    }


ALL_BASELINES = ["BPRMF", "FM", "NFM", "CKE", "CFKG", "RippleNet", "KGCN"]


@pytest.fixture(scope="module")
def trained(ooi_split, ooi_ckg_best, feats):
    """Train each baseline briefly, once per test session."""
    out = {}
    for name, make in model_factories(ooi_split, ooi_ckg_best, feats).items():
        model = make()
        result = model.fit(ooi_split.train, FitConfig(epochs=4, batch_size=256, lr=0.01, seed=0))
        out[name] = (model, result)
    return out


@pytest.mark.parametrize("name", ALL_BASELINES)
class TestBaselineBattery:
    def test_loss_decreases(self, trained, name):
        _, result = trained[name]
        assert result.losses[-1] < result.losses[0]

    def test_losses_finite(self, trained, name):
        _, result = trained[name]
        assert np.isfinite(result.losses).all()

    def test_score_shape(self, trained, name, ooi_split):
        model, _ = trained[name]
        scores = model.score_users(np.array([0, 3, 5]))
        assert scores.shape == (3, ooi_split.train.num_items)
        assert np.isfinite(scores).all()

    def test_recommend_topk(self, trained, name, ooi_split):
        model, _ = trained[name]
        recs = model.recommend(0, k=5)
        assert len(recs) == 5
        assert len(set(recs.tolist())) == 5

    def test_recommend_exclusion(self, trained, name, ooi_split):
        model, _ = trained[name]
        seen = ooi_split.train.items_of_user(0)
        recs = model.recommend(0, k=5, exclude=seen)
        assert not set(recs.tolist()) & set(seen.tolist())

    def test_recommend_sorted_by_score(self, trained, name):
        model, _ = trained[name]
        recs = model.recommend(1, k=5)
        scores = model.score_users(np.array([1]))[0][recs]
        assert (np.diff(scores) <= 1e-12).all()


class TestDeterminism:
    @pytest.mark.parametrize("name", ["BPRMF", "FM", "CFKG"])
    def test_same_seed_same_model(self, ooi_split, ooi_ckg_best, feats, name):
        results = []
        for _ in range(2):
            model = model_factories(ooi_split, ooi_ckg_best, feats)[name]()
            model.fit(ooi_split.train, FitConfig(epochs=2, batch_size=256, seed=7))
            results.append(model.score_users(np.array([0]))[0])
        np.testing.assert_allclose(results[0], results[1])


class TestRecommenderBase:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BPRMF(0, 5)
        with pytest.raises(ValueError):
            BPRMF(5, 5, dim=0)

    def test_fit_shape_mismatch(self, ooi_split):
        model = BPRMF(3, 3, dim=4)
        with pytest.raises(ValueError):
            model.fit(ooi_split.train)

    def test_recommend_bad_user(self, ooi_split):
        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=4)
        with pytest.raises(ValueError):
            model.recommend(-1)
        with pytest.raises(ValueError):
            model.recommend(0, k=0)

    def test_fit_config_validation(self):
        with pytest.raises(ValueError):
            FitConfig(epochs=0)
        with pytest.raises(ValueError):
            FitConfig(lr=-1)
        with pytest.raises(ValueError):
            FitConfig(l2=-0.1)

    def test_batch_l2(self):
        from repro.autograd import Parameter

        a = Parameter(np.array([3.0]))
        b = Parameter(np.array([4.0]))
        assert batch_l2(a, b).item() == 25.0

    def test_eval_callback_invoked(self, ooi_split):
        model = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=4, seed=0)
        calls = []
        result = model.fit(
            ooi_split.train,
            FitConfig(epochs=4, batch_size=256, eval_every=2, seed=0),
            eval_callback=lambda: calls.append(1) or {"metric": 1.0},
        )
        assert len(calls) == 2
        assert len(result.eval_history) == 2
        assert result.eval_history[0]["epoch"] == 2


class TestItemFeatureTable:
    def test_attrs_nonempty_for_all_items(self, feats):
        lengths = np.diff(feats.offsets)
        assert (lengths > 0).all()

    def test_attrs_exclude_interactions(self, feats, ooi_ckg_best):
        user_off, user_size = ooi_ckg_best.space.block("user")
        for item in range(0, feats.num_items, 13):
            attrs = feats.attrs_of(item)
            assert not ((attrs >= user_off) & (attrs < user_off + user_size)).any()

    def test_batch_attrs_matches_single(self, feats):
        items = np.array([0, 2, 2, 5])
        flat, seg = feats.batch_attrs(items)
        for i, item in enumerate(items):
            np.testing.assert_array_equal(flat[seg[i] : seg[i + 1]], feats.attrs_of(int(item)))

    def test_max_attrs(self, feats):
        assert feats.max_attrs() == int(np.diff(feats.offsets).max())


class TestFMStructure:
    def test_fm_score_matches_pair_scores(self, ooi_split, feats):
        """Vectorized full scoring equals the differentiable pair scorer."""
        model = FM(ooi_split.train.num_users, ooi_split.train.num_items, feats, dim=8, seed=1)
        users = np.array([0, 1, 2])
        items = np.array([4, 7, 9])
        pair = model._pair_scores(users, items).data
        full = model.score_users(users)
        np.testing.assert_allclose(full[np.arange(3), items], pair, rtol=1e-10)

    def test_nfm_score_matches_pair_scores(self, ooi_split, feats):
        model = NFM(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            feats,
            dim=8,
            hidden_dim=8,
            dropout=0.0,
            seed=1,
        )
        users = np.array([0, 1])
        items = np.array([3, 8])
        pair = model._pair_scores(users, items, training=False).data
        full = model.score_users(users)
        np.testing.assert_allclose(full[np.arange(2), items], pair, rtol=1e-8)


class TestCFKGStructure:
    def test_scores_are_negative_distances(self, ooi_split, ooi_ckg_best):
        model = CFKG(ooi_split.train.num_users, ooi_split.train.num_items, ooi_ckg_best, dim=8, seed=0)
        users = np.array([0])
        full = model.score_users(users)
        d = model._pair_distance(users, np.array([5])).data
        np.testing.assert_allclose(full[0, 5], -d[0], rtol=1e-10)


class TestRippleNetStructure:
    def test_ripple_memories_shape(self, ooi_split, ooi_ckg_best):
        model = RippleNet(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            ooi_split.train,
            dim=8,
            n_hop=2,
            n_memory=4,
            seed=0,
        )
        U = ooi_split.train.num_users
        assert model.mem_h.shape == (U, 2, 4)

    def test_hop1_heads_are_history_neighbors(self, ooi_split, ooi_ckg_best):
        model = RippleNet(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            ooi_split.train,
            dim=8,
            n_memory=4,
            seed=0,
        )
        u = int(ooi_split.train.active_users()[0])
        history_entities = set(
            ooi_ckg_best.all_item_entities()[ooi_split.train.items_of_user(u)].tolist()
        )
        assert set(model.mem_h[u, 0].tolist()) <= history_entities

    def test_score_matches_pair_scores(self, ooi_split, ooi_ckg_best):
        model = RippleNet(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            ooi_split.train,
            dim=8,
            n_memory=4,
            seed=0,
        )
        users = np.array([0, 1])
        items = np.array([2, 3])
        pair = model._pair_scores(users, items).data
        full = model.score_users(users)
        np.testing.assert_allclose(full[np.arange(2), items], pair, rtol=1e-8)


class TestKGCNStructure:
    def test_score_matches_pair_scores(self, ooi_split, ooi_ckg_best):
        model = KGCN(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            dim=8,
            neighbor_size=4,
            seed=0,
        )
        users = np.array([0, 1])
        items = np.array([2, 3])
        pair = model._pair_scores(users, items).data
        full = model.score_users(users)
        np.testing.assert_allclose(full[np.arange(2), items], pair, rtol=1e-8)

    def test_invalid_params(self, ooi_split, ooi_ckg_best):
        with pytest.raises(ValueError):
            KGCN(3, 3, ooi_ckg_best, neighbor_size=0)
