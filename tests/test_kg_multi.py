"""Cross-facility CKG consolidation tests (the future-work extension)."""

import numpy as np
import pytest

from repro.facility.users import build_user_population
from repro.kg import KnowledgeSources, MultiFacilityIndex, build_cross_facility_ckg


@pytest.fixture(scope="module")
def shared_population(ooi_catalog):
    # Users focused via the OOI catalog; the focus indices are only used for
    # trace generation, so any catalog works for a shared population.
    return build_user_population(ooi_catalog, num_users=40, num_orgs=8, seed=3)


@pytest.fixture(scope="module")
def cross_ckg(ooi_catalog, gage_catalog, shared_population):
    rng = np.random.default_rng(0)
    pairs = []
    for catalog in (ooi_catalog, gage_catalog):
        users = rng.integers(0, shared_population.num_users, 150)
        items = rng.integers(0, catalog.num_objects, 150)
        pairs.append((users, items))
    return build_cross_facility_ckg(
        [ooi_catalog, gage_catalog],
        shared_population,
        pairs,
        sources=KnowledgeSources.best(),
        seed=0,
    )


class TestMultiFacilityIndex:
    def test_item_count(self, ooi_catalog, gage_catalog):
        idx = MultiFacilityIndex([ooi_catalog, gage_catalog])
        assert idx.num_items == ooi_catalog.num_objects + gage_catalog.num_objects

    def test_combined_ids_disjoint(self, ooi_catalog, gage_catalog):
        idx = MultiFacilityIndex([ooi_catalog, gage_catalog])
        a = idx.combined_item_ids(0, np.arange(ooi_catalog.num_objects))
        b = idx.combined_item_ids(1, np.arange(gage_catalog.num_objects))
        assert not (set(a.tolist()) & set(b.tolist()))

    def test_facility_of_item_roundtrip(self, ooi_catalog, gage_catalog):
        idx = MultiFacilityIndex([ooi_catalog, gage_catalog])
        combined = idx.combined_item_ids(1, np.array([0, 5]))
        np.testing.assert_array_equal(idx.facility_of_item(combined), [1, 1])
        combined0 = idx.combined_item_ids(0, np.array([0]))
        np.testing.assert_array_equal(idx.facility_of_item(combined0), [0])

    def test_out_of_range_rejected(self, ooi_catalog, gage_catalog):
        idx = MultiFacilityIndex([ooi_catalog, gage_catalog])
        with pytest.raises(ValueError):
            idx.combined_item_ids(0, np.array([ooi_catalog.num_objects]))
        with pytest.raises(ValueError):
            idx.combined_item_ids(5, np.array([0]))

    def test_empty_catalogs_rejected(self):
        with pytest.raises(ValueError):
            MultiFacilityIndex([])


class TestCrossFacilityCKG:
    def test_combined_sizes(self, cross_ckg, ooi_catalog, gage_catalog, shared_population):
        ckg, idx = cross_ckg
        assert ckg.num_users == shared_population.num_users
        assert ckg.num_items == idx.num_items

    def test_relations_from_both_facilities(self, cross_ckg):
        ckg, _ = cross_ckg
        names = set(ckg.store.relation_counts())
        assert "memberOfArray" in names  # OOI-like LOC
        assert "cityInState" in names  # GAGE-like LOC

    def test_interactions_cover_both_facilities(self, cross_ckg):
        ckg, idx = cross_ckg
        users, items = ckg.interaction_pairs()
        facilities = idx.facility_of_item(items)
        assert set(facilities.tolist()) == {0, 1}

    def test_pair_count_mismatch_rejected(self, ooi_catalog, gage_catalog, shared_population):
        with pytest.raises(ValueError):
            build_cross_facility_ckg(
                [ooi_catalog, gage_catalog],
                shared_population,
                [(np.array([0]), np.array([0]))],  # only one set
            )

    def test_models_train_on_cross_ckg(self, cross_ckg, shared_population):
        from repro.data import InteractionDataset
        from repro.models import CKAT, CKATConfig
        from repro.models.base import FitConfig

        ckg, idx = cross_ckg
        users, items = ckg.interaction_pairs()
        data = InteractionDataset(users, items, ckg.num_users, ckg.num_items)
        model = CKAT(
            ckg.num_users,
            ckg.num_items,
            ckg,
            CKATConfig(dim=8, relation_dim=8, layer_dims=(8,), kg_steps_per_epoch=2),
            seed=0,
        )
        result = model.fit(data, FitConfig(epochs=2, batch_size=128, seed=0))
        assert np.isfinite(result.losses).all()
        recs = model.recommend(0, k=10)
        assert len(recs) == 10
