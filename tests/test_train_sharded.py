"""Data-parallel training tests: determinism, crash consistency, resume.

The contract under test (DESIGN §14):

- fork and inline modes are **bit-identical** for the same worker count;
- different worker counts consume identical batch schedules and agree to
  floating-point reassociation tolerance (the gradient-agreement harness
  measures the divergence directly);
- a worker crash (injected exception or SIGKILL) aborts the epoch *before*
  the in-flight round reaches shared tables — applied steps always form a
  complete prefix, never a partial or doubled round;
- sharded checkpoints round-trip worker-resident lazy-Adam state and only
  resume under the executor layout that wrote them.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.data.interactions import InteractionDataset
from repro.data.sampling import BPRSampler, ShardedBPRSampler
from repro.io.checkpoints import load_training_checkpoint
from repro.models import BPRMF
from repro.models.base import FitConfig
from repro.train import (
    ShardedExecutor,
    TrainEngine,
    TransRObjective,
    TripleShardSampler,
    gradient_agreement_report,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture()
def data():
    rng = np.random.default_rng(0)
    n = 2000
    return InteractionDataset(
        rng.integers(0, 64, n), rng.integers(0, 80, n), num_users=64, num_items=80
    )


def sampler(data):
    return ShardedBPRSampler(data, users_per_shard=16)


def fit_bprmf(data, cfg, executor, **kw):
    model = BPRMF(64, 80, dim=8, seed=1)
    result = model.fit(data, cfg, sampler=sampler(data), executor=executor, **kw)
    return model, result


def params_equal(a, b):
    return all(np.array_equal(p.data, q.data) for p, q in zip(a.parameters(), b.parameters()))


class TestDeterminism:
    def test_fork_matches_inline_bit_for_bit(self, data):
        cfg = FitConfig(epochs=3, batch_size=64, seed=3)
        mi, ri = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=False))
        mf, rf = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=True))
        assert params_equal(mi, mf)
        assert ri.losses == rf.losses

    def test_worker_counts_agree_within_tolerance(self, data):
        """W=1 vs W=2: same batches, reassociated summation only."""
        cfg = FitConfig(epochs=3, batch_size=64, seed=3)
        m1, _ = fit_bprmf(data, cfg, ShardedExecutor(1, parallel=False))
        m2, _ = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=False))
        for p, q in zip(m1.parameters(), m2.parameters()):
            assert np.allclose(p.data, q.data, rtol=0, atol=1e-12)

    def test_rerun_is_deterministic(self, data):
        cfg = FitConfig(epochs=2, batch_size=64, seed=7)
        a, _ = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=True))
        b, _ = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=True))
        assert params_equal(a, b)

    def test_parameters_restored_off_segments_after_close(self, data):
        """After fit, parameters live in ordinary memory, not arena mmaps."""
        cfg = FitConfig(epochs=1, batch_size=64, seed=3)
        m, _ = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=True))
        for p in m.parameters():
            assert not isinstance(p.data, np.memmap)


class TestGradientAgreement:
    def test_two_level_reduction_matches_serial(self, data):
        rep = gradient_agreement_report(
            lambda: BPRMF(64, 80, dim=8, seed=1),
            sampler(data),
            FitConfig(epochs=1, batch_size=64, seed=3),
            workers=2,
        )
        assert rep["within_tolerance"], rep
        assert rep["max_rel_diff"] <= 1e-9
        assert set(rep["params"]) == {"bprmf.user", "bprmf.item"}

    def test_report_scales_with_workers(self, data):
        for workers in (1, 3):
            rep = gradient_agreement_report(
                lambda: BPRMF(64, 80, dim=8, seed=1),
                sampler(data),
                FitConfig(epochs=1, batch_size=64, seed=3),
                workers=workers,
            )
            assert rep["workers"] == workers
            assert rep["within_tolerance"], rep


class TestCheckpointResume:
    def test_sharded_resume_is_bit_identical(self, data, tmp_path):
        """6 epochs straight == 3 + checkpoint + resume for 3 more (fork)."""
        cfg = FitConfig(epochs=6, batch_size=64, seed=3)
        ref, _ = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=True))
        ck = tmp_path / "shard.ckpt.npz"
        fit_bprmf(
            data,
            FitConfig(epochs=3, batch_size=64, seed=3),
            ShardedExecutor(2, parallel=True),
            checkpoint_every=3,
            checkpoint_path=ck,
        )
        resumed, _ = fit_bprmf(
            data, cfg, ShardedExecutor(2, parallel=True), resume_from=ck
        )
        assert params_equal(ref, resumed)

    def test_checkpoint_records_shard_layout(self, data, tmp_path):
        ck = tmp_path / "shard.ckpt.npz"
        fit_bprmf(
            data,
            FitConfig(epochs=2, batch_size=64, seed=3),
            ShardedExecutor(2, parallel=False),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        fp = load_training_checkpoint(ck).config["executor"]
        assert fp["kind"] == "sharded"
        assert fp["workers"] == 2
        assert fp["num_shards"] == 4
        assert fp["rows_per_shard"] == 16

    def test_sharded_checkpoint_refuses_other_layouts(self, data, tmp_path):
        """Resume fails loudly serially and under a different worker count."""
        cfg = FitConfig(epochs=4, batch_size=64, seed=3)
        ck = tmp_path / "shard.ckpt.npz"
        fit_bprmf(
            data,
            FitConfig(epochs=2, batch_size=64, seed=3),
            ShardedExecutor(2, parallel=False),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        with pytest.raises(ValueError, match="cannot resume.*executor"):
            BPRMF(64, 80, dim=8, seed=1).fit(data, cfg, resume_from=ck)
        with pytest.raises(ValueError, match="cannot resume.*executor"):
            fit_bprmf(data, cfg, ShardedExecutor(4, parallel=False), resume_from=ck)

    def test_row_steps_round_trip_through_npz(self, data, tmp_path):
        """Worker-resident lazy-Adam row_steps survive the npz format."""
        ck = tmp_path / "shard.ckpt.npz"
        fit_bprmf(
            data,
            FitConfig(epochs=2, batch_size=64, seed=3),
            ShardedExecutor(2, parallel=True),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        state = load_training_checkpoint(ck).optimizer_state
        assert "row_steps" in state
        # param 0 (bprmf.user) is row-partitioned: full-table row_steps present
        row_steps = state["row_steps"]
        key = 0 if 0 in row_steps else "0"
        assert len(row_steps[key]) == 64


class TestCrashConsistency:
    def test_injected_failure_aborts_without_applying(self, data):
        """A worker exception mid-epoch never half-applies the round.

        The shared item table after a crash at round r must equal a clean
        run truncated at r rounds — the failed round's gradients from the
        *surviving* worker must not leak in (no partial application), and
        earlier rounds must all be present (no lost or doubled batch).
        """
        cfg = FitConfig(epochs=1, batch_size=64, seed=3)
        crashed = BPRMF(64, 80, dim=8, seed=1)
        with pytest.raises(RuntimeError, match="NOT applied"):
            crashed.fit(
                data,
                cfg,
                sampler=sampler(data),
                executor=ShardedExecutor(2, parallel=True, _fail_at=(1, 2)),
            )
        truncated, _ = fit_bprmf(
            data, cfg, ShardedExecutor(2, parallel=True, _max_rounds=2)
        )
        # item table (shared, master-applied) is the crash-consistency witness
        assert np.array_equal(crashed.parameters()[1].data, truncated.parameters()[1].data)

    def test_sigkilled_worker_detected(self, data):
        """SIGKILL mid-epoch surfaces as a worker-death error, not a hang."""
        ex = ShardedExecutor(2, parallel=True, barrier_timeout=30)
        model = BPRMF(64, 80, dim=8, seed=1)

        def killer():
            deadline = time.time() + 10
            while not ex._procs and time.time() < deadline:
                time.sleep(0.05)
            time.sleep(0.3)
            if ex._procs:
                os.kill(ex._procs[1].pid, signal.SIGKILL)

        t = threading.Thread(target=killer)
        t.start()
        try:
            with pytest.raises(RuntimeError, match="died.*resume"):
                model.fit(
                    data,
                    FitConfig(epochs=200, batch_size=64, seed=3),
                    sampler=sampler(data),
                    executor=ex,
                )
        finally:
            t.join()

    def test_kill_and_resume_matches_uninterrupted(self, data, tmp_path):
        """SIGKILL mid-epoch, resume from checkpoint → same final parameters.

        Crash recovery is resume-from-last-checkpoint; with one worker
        count throughout, the recovered run is bit-identical to the
        uninterrupted one (the tolerance bound only enters when the worker
        count changes across the resume, which the fingerprint forbids).
        """
        cfg = FitConfig(epochs=4, batch_size=64, seed=3)
        ref, _ = fit_bprmf(data, cfg, ShardedExecutor(2, parallel=True))

        ck = tmp_path / "kill.ckpt.npz"
        fit_bprmf(
            data,
            FitConfig(epochs=2, batch_size=64, seed=3),
            ShardedExecutor(2, parallel=True),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        # epoch 3 crashes mid-flight — the engine surfaces the abort and the
        # checkpoint from epoch 2 is the recovery point
        with pytest.raises(RuntimeError, match="NOT applied"):
            fit_bprmf(
                data,
                cfg,
                ShardedExecutor(2, parallel=True, _fail_at=(0, 5)),
                resume_from=ck,
            )
        resumed, _ = fit_bprmf(
            data, cfg, ShardedExecutor(2, parallel=True), resume_from=ck
        )
        assert params_equal(ref, resumed)


class TestValidation:
    def test_plain_sampler_rejected(self, data):
        ex = ShardedExecutor(2, parallel=False)
        with pytest.raises(ValueError, match="shard-addressable sampler"):
            BPRMF(64, 80, dim=8, seed=1).fit(
                data, FitConfig(epochs=1), sampler=BPRSampler(data), executor=ex
            )

    def test_private_rng_models_rejected(self, data):
        """Models with private generators (NFM/CKAT dropout) cannot shard."""

        class PrivateRNGModel(BPRMF):
            def extra_rng_state(self):
                return {"dropout": {"state": 1}}

        model = PrivateRNGModel(64, 80, dim=8, seed=1)
        with pytest.raises(NotImplementedError, match="private RNG"):
            model.fit(
                data,
                FitConfig(epochs=1),
                sampler=sampler(data),
                executor=ShardedExecutor(2, parallel=False),
            )

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="num_workers"):
            ShardedExecutor(0)

    def test_default_sampler_shards_by_worker_count(self, data):
        ex = ShardedExecutor(4, parallel=False)
        s = ex.default_sampler(data)
        assert isinstance(s, ShardedBPRSampler)
        assert s.num_shards >= 4  # at least one shard per worker


class TestTransRObjective:
    @pytest.fixture()
    def triples(self):
        rng = np.random.default_rng(7)
        n = 3000
        return (
            rng.integers(0, 120, n),
            rng.integers(0, 5, n),
            rng.integers(0, 120, n),
        )

    def test_trains_serially_and_sharded(self, triples):
        h, r, t = triples
        cfg = FitConfig(epochs=2, batch_size=128, seed=5)

        def fit(executor):
            obj = TransRObjective(120, 5, entity_dim=8, relation_dim=4, seed=2)
            result = TrainEngine(obj, executor=executor).fit(
                None, cfg, sampler=TripleShardSampler(h, r, t, rows_per_shard=500)
            )
            return obj, result

        serial, rs = fit(None)
        inline, ri = fit(ShardedExecutor(2, parallel=False))
        fork, rf = fit(ShardedExecutor(2, parallel=True))
        assert params_equal(inline, fork)
        assert ri.losses == rf.losses
        assert rs.losses[-1] < rs.losses[0] * 1.01  # it actually trains
        assert rf.losses[-1] < rf.losses[0] * 1.01

    def test_agreement_with_all_shared_tables(self, triples):
        h, r, t = triples
        rep = gradient_agreement_report(
            lambda: TransRObjective(120, 5, entity_dim=8, relation_dim=4, seed=2),
            TripleShardSampler(h, r, t, rows_per_shard=500),
            FitConfig(epochs=1, batch_size=128, seed=5),
            workers=2,
        )
        assert rep["within_tolerance"], rep

    def test_triple_sampler_covers_epoch(self, triples):
        h, r, t = triples
        s = TripleShardSampler(h, r, t, rows_per_shard=500)
        assert s.num_shards == 6
        total = sum(
            len(batch[0])
            for shard in range(s.num_shards)
            for batch in s.shard_epoch_batches(shard, 128, np.random.default_rng(0))
        )
        assert total == len(h)
