"""Content-addressed artifact store: fingerprints, round-trips, faults.

The fault-injection half is the point: a truncated, corrupted, or
concurrently-written artifact must surface as a verified miss (evict →
rebuild), never as a crash or a silently wrong load.
"""

import dataclasses
import json
import os
import pathlib

import numpy as np
import pytest

from repro.store import ArtifactStore, canonical_json, fingerprint, resolve_cache_dir


@dataclasses.dataclass(frozen=True)
class _Knobs:
    depth: int
    rate: float


def _arrays():
    return {
        "ids": np.arange(64, dtype=np.int64),
        "vals": np.linspace(0.0, 1.0, 64, dtype=np.float32),
    }


def _put(store, config=None, kind="trace"):
    return store.put(kind, config or {"seed": 7}, 1, _arrays(), meta={"n": 64})


# ---------------------------------------------------------------- fingerprints
class TestCanonicalJson:
    def test_dict_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert canonical_json({"xs": (1, 2)}) == canonical_json({"xs": [1, 2]})

    def test_numpy_scalars_normalized(self):
        assert canonical_json({"n": np.int64(3), "f": np.float64(0.5), "b": np.bool_(True)}) == (
            canonical_json({"n": 3, "f": 0.5, "b": True})
        )

    def test_dataclass_equals_its_dict(self):
        assert canonical_json(_Knobs(2, 0.1)) == canonical_json({"depth": 2, "rate": 0.1})

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"x": float("nan")})

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"x": float("inf")})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            canonical_json({1: "a"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="not fingerprintable"):
            canonical_json({"x": object()})


class TestFingerprint:
    def test_stable(self):
        assert fingerprint("trace", {"seed": 7}, 1) == fingerprint("trace", {"seed": 7}, 1)

    def test_kind_config_and_schema_all_enter(self):
        base = fingerprint("trace", {"seed": 7}, 1)
        assert fingerprint("split", {"seed": 7}, 1) != base
        assert fingerprint("trace", {"seed": 8}, 1) != base
        assert fingerprint("trace", {"seed": 7}, 2) != base


class TestResolveCacheDir:
    def test_explicit_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/elsewhere")
        assert resolve_cache_dir(tmp_path) == tmp_path

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/from/env")
        assert resolve_cache_dir(None) == pathlib.Path("/from/env")

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None) is None


# ------------------------------------------------------------------ round-trip
class TestRoundTrip:
    def test_put_get_arrays_identical(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _put(store)
        art = store.get("trace", {"seed": 7}, 1)
        assert art is not None
        for name, expect in _arrays().items():
            got = art.array(name)
            np.testing.assert_array_equal(np.asarray(got), expect)
            assert np.asarray(got).dtype == expect.dtype
        assert art.meta == {"n": 64}
        assert art.array_names() == ["ids", "vals"]

    def test_arrays_memory_mapped_readonly(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _put(store)
        arr = store.get("trace", {"seed": 7}, 1).array("ids")
        assert isinstance(arr, np.memmap)
        with pytest.raises((ValueError, OSError)):
            arr[0] = 99

    def test_miss_then_hit_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("trace", {"seed": 7}, 1) is None
        _put(store)
        assert store.get("trace", {"seed": 7}, 1) is not None
        assert store.stats() == {"hits": 1, "misses": 1, "builds": 0, "evictions": 0}

    def test_get_or_build_runs_builder_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def builder():
            calls.append(1)
            return _arrays(), {"n": 64}

        _, built = store.get_or_build("trace", {"seed": 7}, 1, builder)
        assert built and calls == [1]
        _, built = store.get_or_build("trace", {"seed": 7}, 1, builder)
        assert not built and calls == [1]
        assert store.builds == 1

    def test_object_dtype_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(TypeError, match="object dtype"):
            store.put("trace", {}, 1, {"bad": np.array([{}, {}], dtype=object)})

    def test_hostile_array_name_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="invalid array name"):
            store.put("trace", {}, 1, {"a/b": np.zeros(2)})


# -------------------------------------------------------------- fault injection
class TestFaults:
    def test_truncated_array_evicted_not_crashed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        art = _put(store)
        npy = art.path / "ids.npy"
        npy.write_bytes(npy.read_bytes()[: npy.stat().st_size // 2])
        assert store.get("trace", {"seed": 7}, 1) is None
        assert store.evictions == 1
        assert not art.path.exists()
        # the slot is rebuildable after eviction
        _put(store)
        assert store.get("trace", {"seed": 7}, 1) is not None

    def test_bitflip_corruption_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        art = _put(store)
        npy = art.path / "vals.npy"
        raw = bytearray(npy.read_bytes())
        raw[-1] ^= 0xFF  # same size, different bytes: only the hash catches it
        npy.write_bytes(bytes(raw))
        assert store.get("trace", {"seed": 7}, 1) is None
        assert store.evictions == 1

    def test_mangled_meta_json_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        art = _put(store)
        (art.path / "meta.json").write_text("{not json", encoding="utf-8")
        assert store.get("trace", {"seed": 7}, 1) is None
        assert store.evictions == 1

    def test_missing_array_file_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        art = _put(store)
        (art.path / "ids.npy").unlink()
        assert store.get("trace", {"seed": 7}, 1) is None
        assert store.evictions == 1

    def test_foreign_format_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        art = _put(store)
        meta = json.loads((art.path / "meta.json").read_text(encoding="utf-8"))
        meta["format"] = "someone-elses-cache"
        (art.path / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        assert store.get("trace", {"seed": 7}, 1) is None

    def test_double_writer_loser_adopts_winner(self, tmp_path):
        """Two writers race on one key: the loser's rename fails and it must
        hand back the winner's (verified) artifact, not crash."""
        winner = ArtifactStore(tmp_path)
        first = _put(winner)
        loser = ArtifactStore(tmp_path)
        second = _put(loser)  # final dir already exists → os.replace loses
        assert second.digest == first.digest
        np.testing.assert_array_equal(np.asarray(second.array("ids")), _arrays()["ids"])
        assert not any(winner.tmp_dir.iterdir())  # no abandoned tmp builds

    def test_double_writer_with_corrupt_winner_rebuilds(self, tmp_path):
        """Losing the race to a *corrupt* occupant: evict it and retry."""
        store = ArtifactStore(tmp_path)
        final = store.entry_path("trace", {"seed": 7}, 1)
        final.mkdir(parents=True)
        (final / "meta.json").write_text("garbage", encoding="utf-8")
        art = _put(store)
        assert store.evictions == 1
        np.testing.assert_array_equal(np.asarray(art.array("ids")), _arrays()["ids"])
        assert store.get("trace", {"seed": 7}, 1) is not None


# ------------------------------------------------------------------ management
class TestManagement:
    def test_ls_lists_and_filters_kinds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _put(store, kind="trace")
        _put(store, kind="split")
        assert {r.kind for r in store.ls()} == {"trace", "split"}
        only = store.ls(kinds=["split"])
        assert [r.kind for r in only] == ["split"]
        assert all(r.nbytes > 0 for r in only)

    def test_ls_skips_corrupt_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        art = _put(store)
        (art.path / "meta.json").write_text("junk", encoding="utf-8")
        assert store.ls() == []

    def test_gc_removes_and_reclaims(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _put(store, kind="trace")
        _put(store, kind="split")
        removed, reclaimed = store.gc(kinds=["trace"])
        assert removed == 1 and reclaimed > 0
        assert [r.kind for r in store.ls()] == ["split"]
        removed, _ = store.gc()
        assert removed == 1
        assert store.ls() == []

    def test_gc_reaps_stray_tmp_dirs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.tmp_dir.mkdir(parents=True)
        stray = store.tmp_dir / f"{os.getpid()}-deadbeef"
        stray.mkdir()
        (stray / "partial.npy").write_bytes(b"\x00" * 128)
        _, reclaimed = store.gc()
        assert reclaimed >= 128
        assert not stray.exists()
