"""Shared fixtures: miniature facility pipelines reused across test modules.

Session-scoped where construction is expensive; tests must not mutate these
(fixtures that need mutation build their own copies).
"""

import numpy as np
import pytest

from repro.data import per_user_split, trace_to_interactions
from repro.facility import (
    build_gage_catalog,
    build_ooi_catalog,
    build_user_population,
    generate_trace,
)
from repro.facility.affinity import AffinityModel
from repro.facility.gage import GAGEConfig
from repro.facility.ooi import OOIConfig
from repro.kg import KnowledgeSources, build_ckg


@pytest.fixture(scope="session")
def ooi_catalog():
    return build_ooi_catalog(OOIConfig(num_sites=30), seed=11)


@pytest.fixture(scope="session")
def gage_catalog():
    return build_gage_catalog(GAGEConfig(num_stations=120, num_cities=60), seed=11)


@pytest.fixture(scope="session")
def affinity():
    return AffinityModel(p_region=0.35, p_dtype=0.5, site_concentration=10.0)


@pytest.fixture(scope="session")
def ooi_population(ooi_catalog):
    return build_user_population(ooi_catalog, num_users=60, num_orgs=12, num_cities=12, seed=13)


@pytest.fixture(scope="session")
def ooi_trace(ooi_catalog, ooi_population, affinity):
    return generate_trace(
        ooi_catalog, ooi_population, affinity, seed=17, queries_per_user_mean=40.0
    )


@pytest.fixture(scope="session")
def ooi_interactions(ooi_trace):
    return trace_to_interactions(ooi_trace, min_user_interactions=3)


@pytest.fixture(scope="session")
def ooi_split(ooi_interactions):
    return per_user_split(ooi_interactions, train_fraction=0.8, seed=19)


@pytest.fixture(scope="session")
def ooi_ckg(ooi_catalog, ooi_population, ooi_split):
    return build_ckg(
        ooi_catalog,
        ooi_population,
        ooi_split.train.user_ids,
        ooi_split.train.item_ids,
        sources=KnowledgeSources.all_sources(),
        seed=23,
    )


@pytest.fixture(scope="session")
def ooi_ckg_best(ooi_catalog, ooi_population, ooi_split):
    return build_ckg(
        ooi_catalog,
        ooi_population,
        ooi_split.train.user_ids,
        ooi_split.train.item_ids,
        sources=KnowledgeSources.best(),
        seed=23,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
