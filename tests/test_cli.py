"""CLI tests: parser wiring and the fast commands end to end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_analyze(self):
        args = build_parser().parse_args(["analyze", "ooi"])
        assert args.command == "analyze"
        assert args.dataset == "ooi"
        assert args.scale == "small"

    def test_global_options(self):
        args = build_parser().parse_args(["--scale", "full", "--seed", "3", "analyze", "gage"])
        assert args.scale == "full" and args.seed == 3

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "1"])

    def test_train_model_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "SVD", "ooi"])

    def test_recommend_args(self):
        args = build_parser().parse_args(["recommend", "ooi", "5", "--k", "3"])
        assert args.user == 5 and args.k == 3

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_analyze_runs(self, capsys):
        assert main(["analyze", "ooi"]) == 0
        out = capsys.readouterr().out
        assert "query concentration" in out

    def test_table1_runs(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_figure3_runs(self, capsys):
        assert main(["figure", "3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_train_bprmf_runs(self, capsys):
        assert main(["train", "BPRMF", "ooi", "--epochs", "2"]) == 0
        assert "recall@20" in capsys.readouterr().out

    def test_train_with_save(self, tmp_path, capsys):
        path = tmp_path / "ck.npz"
        assert main(["train", "BPRMF", "ooi", "--epochs", "2", "--save", str(path)]) == 0
        assert path.exists()

    def test_recommend_runs(self, capsys):
        assert main(["recommend", "ooi", "0", "--epochs", "2", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "top-3 data objects" in out

    def test_recommend_bad_user(self, capsys):
        assert main(["recommend", "ooi", "99999", "--epochs", "1"]) == 2


class TestCacheCommand:
    def test_parser_accepts_cache_actions(self):
        args = build_parser().parse_args(["--cache-dir", "/c", "cache", "ls", "--kind", "trace"])
        assert args.command == "cache" and args.action == "ls"
        assert args.cache_dir == "/c" and args.kind == ["trace"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "defrag"])

    def test_path_reports_disabled_without_config(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "path"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_ls_and_gc_require_configured_cache(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "ls"]) == 2
        assert main(["cache", "gc"]) == 2

    def test_ls_gc_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        # populate the cache through a real (small) pipeline build
        from repro.pipeline import DatasetPipeline

        DatasetPipeline("ooi", scale="small", seed=7, cache_dir=cache).split()
        assert main(["--cache-dir", cache, "cache", "path"]) == 0
        assert cache in capsys.readouterr().out

        assert main(["--cache-dir", cache, "cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "split" in out and "artifact(s)" in out

        assert main(["--cache-dir", cache, "cache", "gc", "--kind", "trace"]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out
        assert main(["--cache-dir", cache, "cache", "ls"]) == 0
        assert "trace" not in capsys.readouterr().out

        assert main(["--cache-dir", cache, "cache", "gc"]) == 0
        assert main(["--cache-dir", cache, "cache", "ls"]) == 0
        assert "empty" in capsys.readouterr().out
