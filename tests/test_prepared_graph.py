"""PreparedGraph: injected structures are bit-identical to self-derived.

The shared-graph-runtime contract: a model handed a ``PreparedGraph`` must
train to exactly the parameters it would have reached deriving its own
structures from the CKG — otherwise the artifact cache would silently change
results.  Locked down here for CKAT, KGCN, RippleNet (full fit parameter
comparison) and CKE (triple-order identity of the TransR sampling store),
plus the cross-process determinism of ``relation_edge_groups`` that makes
the serialized grouping safe to share between workers.
"""

import hashlib
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.kg.adjacency import CSRAdjacency
from repro.kg.prepared import PreparedGraph
from repro.kg.subgraphs import INTERACT
from repro.models import CKAT, CKATConfig
from repro.models.base import FitConfig
from repro.models.cke import CKE
from repro.models.kgcn import KGCN
from repro.models.ripplenet import RippleNet

_FIT = FitConfig(epochs=2, batch_size=256, seed=0)


def _params(model):
    return [np.asarray(p.data) for p in model.parameters()]


def _assert_params_identical(a, b):
    pa, pb = _params(a), _params(b)
    assert len(pa) == len(pb)
    for x, y in zip(pa, pb):
        np.testing.assert_array_equal(x, y)


# ------------------------------------------------------------------ structures
class TestDerivations:
    def test_propagation_matches_self_derived(self, ooi_ckg_best):
        graph = PreparedGraph.from_ckg(ooi_ckg_best)
        own = CSRAdjacency(ooi_ckg_best.propagation_store)
        np.testing.assert_array_equal(graph.propagation.heads, own.heads)
        np.testing.assert_array_equal(graph.propagation.rels, own.rels)
        np.testing.assert_array_equal(graph.propagation.tails, own.tails)

    def test_canonical_kg_preserves_triple_order(self, ooi_ckg_best):
        """CKE samples triples by index, so the canonical store must keep the
        original (unsorted) triple order — a CSR re-sort would reshuffle the
        TransR minibatches and break bit-identity."""
        graph = PreparedGraph.from_ckg(ooi_ckg_best)
        own = ooi_ckg_best.store.filter_relations(
            [n for n in ooi_ckg_best.store.relations.names if n != INTERACT]
        )
        np.testing.assert_array_equal(graph.canonical_kg.heads, own.heads)
        np.testing.assert_array_equal(graph.canonical_kg.rels, own.rels)
        np.testing.assert_array_equal(graph.canonical_kg.tails, own.tails)

    def test_round_trip_through_arrays(self, ooi_ckg_best):
        graph = PreparedGraph.from_ckg(ooi_ckg_best)
        arrays, meta = graph.to_arrays()
        clone = PreparedGraph.from_arrays(arrays, meta)
        np.testing.assert_array_equal(clone.propagation.heads, graph.propagation.heads)
        np.testing.assert_array_equal(clone.knowledge.tails, graph.knowledge.tails)
        np.testing.assert_array_equal(clone.canonical_kg.rels, graph.canonical_kg.rels)
        order, bounds = graph.propagation.relation_edge_groups()
        c_order, c_bounds = clone.propagation.relation_edge_groups()
        np.testing.assert_array_equal(np.asarray(c_order), order)
        np.testing.assert_array_equal(np.asarray(c_bounds), bounds)

    def test_check_compatible_rejects_foreign_graph(self, ooi_ckg_best, ooi_ckg):
        graph = PreparedGraph.from_ckg(ooi_ckg_best)
        with pytest.raises(ValueError, match="different"):
            graph.check_compatible(ooi_ckg)
        assert graph.check_compatible(ooi_ckg_best) is graph


# ------------------------------------------------------- trained bit-identity
class TestInjectedTrainingIdentity:
    def test_ckat(self, ooi_split, ooi_ckg_best):
        n_u, n_i = ooi_split.train.num_users, ooi_split.train.num_items
        cfg = CKATConfig(dim=8, relation_dim=8, layer_dims=(8, 4))
        own = CKAT(n_u, n_i, ooi_ckg_best, cfg, seed=0)
        injected = CKAT(
            n_u, n_i, ooi_ckg_best, cfg, seed=0,
            graph=PreparedGraph.from_ckg(ooi_ckg_best),
        )
        own.fit(ooi_split.train, _FIT)
        injected.fit(ooi_split.train, _FIT)
        _assert_params_identical(own, injected)

    def test_kgcn(self, ooi_split, ooi_ckg_best):
        n_u, n_i = ooi_split.train.num_users, ooi_split.train.num_items
        own = KGCN(n_u, n_i, ooi_ckg_best, dim=8, neighbor_size=4, seed=0)
        injected = KGCN(
            n_u, n_i, ooi_ckg_best, dim=8, neighbor_size=4, seed=0,
            graph=PreparedGraph.from_ckg(ooi_ckg_best),
        )
        own.fit(ooi_split.train, _FIT)
        injected.fit(ooi_split.train, _FIT)
        _assert_params_identical(own, injected)

    def test_ripplenet(self, ooi_split, ooi_ckg_best):
        n_u, n_i = ooi_split.train.num_users, ooi_split.train.num_items
        own = RippleNet(n_u, n_i, ooi_ckg_best, ooi_split.train, dim=8, n_memory=8, seed=0)
        injected = RippleNet(
            n_u, n_i, ooi_ckg_best, ooi_split.train, dim=8, n_memory=8, seed=0,
            graph=PreparedGraph.from_ckg(ooi_ckg_best),
        )
        own.fit(ooi_split.train, _FIT)
        injected.fit(ooi_split.train, _FIT)
        _assert_params_identical(own, injected)

    def test_cke_sampling_store_identical(self, ooi_split, ooi_ckg_best):
        n_u, n_i = ooi_split.train.num_users, ooi_split.train.num_items
        own = CKE(n_u, n_i, ooi_ckg_best, dim=8, relation_dim=8, seed=0)
        injected = CKE(
            n_u, n_i, ooi_ckg_best, dim=8, relation_dim=8, seed=0,
            graph=PreparedGraph.from_ckg(ooi_ckg_best),
        )
        np.testing.assert_array_equal(own.kg_store.heads, injected.kg_store.heads)
        np.testing.assert_array_equal(own.kg_store.rels, injected.kg_store.rels)
        np.testing.assert_array_equal(own.kg_store.tails, injected.kg_store.tails)


# -------------------------------------------------- cross-process determinism
_GROUPS_SCRIPT = """
import hashlib
from repro.kg.subgraphs import KnowledgeSources
from repro.pipeline import DatasetPipeline

adj = DatasetPipeline("ooi", scale="small", seed=7).graph(KnowledgeSources.best()).propagation
order, bounds = adj.relation_edge_groups()
print(hashlib.sha256(order.tobytes() + bounds.tobytes()).hexdigest())
"""


def _groups_digest_in_subprocess():
    env = dict(os.environ)
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = str(src)
    env.pop("REPRO_CACHE_DIR", None)
    out = subprocess.run(
        [sys.executable, "-c", _GROUPS_SCRIPT],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout.strip()


def test_relation_edge_groups_deterministic_across_processes():
    """The serialized (order, bounds) grouping must be reproducible by any
    worker process — a stable argsort of the same edge arrays, with no
    hash-seed or dict-order dependence."""
    digests = {_groups_digest_in_subprocess() for _ in range(2)}
    assert len(digests) == 1
