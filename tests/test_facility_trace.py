"""Query-trace generator tests."""

import numpy as np
import pytest

from repro.facility.trace import SECONDS_PER_YEAR, QueryTrace, TraceGenerator, generate_trace


class TestQueryTrace:
    def test_length(self, ooi_trace):
        assert len(ooi_trace) == len(ooi_trace.user_ids)

    def test_ids_in_range(self, ooi_trace):
        assert ooi_trace.user_ids.min() >= 0
        assert ooi_trace.user_ids.max() < ooi_trace.num_users
        assert ooi_trace.object_ids.max() < ooi_trace.num_objects

    def test_timestamps_sorted_within_year(self, ooi_trace):
        ts = ooi_trace.timestamps
        assert (np.diff(ts) >= 0).all()
        assert ts.min() >= 0 and ts.max() <= SECONDS_PER_YEAR

    def test_queries_of_user(self, ooi_trace):
        objs = ooi_trace.queries_of_user(0)
        assert len(objs) == (ooi_trace.user_ids == 0).sum()

    def test_per_user_counts_sum(self, ooi_trace):
        counts = ooi_trace.per_user_counts()
        assert counts.sum() == len(ooi_trace)
        assert len(counts) == ooi_trace.num_users

    def test_unique_pairs_deduplicated(self, ooi_trace):
        u, v = ooi_trace.unique_pairs()
        keys = u * ooi_trace.num_objects + v
        assert len(np.unique(keys)) == len(keys)

    def test_unique_pairs_subset_of_records(self, ooi_trace):
        u, v = ooi_trace.unique_pairs()
        record_keys = set(
            (ooi_trace.user_ids * ooi_trace.num_objects + ooi_trace.object_ids).tolist()
        )
        assert set((u * ooi_trace.num_objects + v).tolist()) == record_keys

    def test_subset(self, ooi_trace):
        mask = ooi_trace.user_ids == 0
        sub = ooi_trace.subset(mask)
        assert len(sub) == mask.sum()
        assert (sub.user_ids == 0).all()

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            QueryTrace(np.zeros(2, dtype=int), np.zeros(3, dtype=int), np.zeros(2), 5, 5)

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError):
            QueryTrace(np.array([7]), np.array([0]), np.array([0.0]), 5, 5)

    def test_out_of_range_object_rejected(self):
        with pytest.raises(ValueError):
            QueryTrace(np.array([0]), np.array([9]), np.array([0.0]), 5, 5)


class TestTraceGenerator:
    def test_every_user_queries(self, ooi_trace):
        counts = ooi_trace.per_user_counts()
        assert (counts >= 1).all()

    def test_deterministic(self, ooi_catalog, ooi_population, affinity):
        a = generate_trace(ooi_catalog, ooi_population, affinity, seed=42)
        b = generate_trace(ooi_catalog, ooi_population, affinity, seed=42)
        np.testing.assert_array_equal(a.object_ids, b.object_ids)
        np.testing.assert_array_equal(a.user_ids, b.user_ids)

    def test_seed_changes_trace(self, ooi_catalog, ooi_population, affinity):
        a = generate_trace(ooi_catalog, ooi_population, affinity, seed=1)
        b = generate_trace(ooi_catalog, ooi_population, affinity, seed=2)
        assert len(a) != len(b) or not np.array_equal(a.object_ids, b.object_ids)

    def test_mean_queries_scales(self, ooi_catalog, ooi_population, affinity):
        small = generate_trace(
            ooi_catalog, ooi_population, affinity, seed=3, queries_per_user_mean=10.0
        )
        large = generate_trace(
            ooi_catalog, ooi_population, affinity, seed=3, queries_per_user_mean=100.0
        )
        assert len(large) > 3 * len(small)

    def test_heavy_tail(self, ooi_catalog, ooi_population, affinity):
        trace = generate_trace(
            ooi_catalog, ooi_population, affinity, seed=4, lognormal_sigma=1.5
        )
        counts = trace.per_user_counts()
        assert counts.max() > 5 * np.median(counts)

    def test_zero_sigma_near_constant(self, ooi_catalog, ooi_population, affinity):
        gen = TraceGenerator(
            ooi_catalog, ooi_population, affinity, queries_per_user_mean=20.0, lognormal_sigma=0.0
        )
        counts = gen.sample_query_counts(np.random.default_rng(0))
        assert counts.min() == counts.max() == 20

    def test_validation(self, ooi_catalog, ooi_population, affinity):
        with pytest.raises(ValueError):
            TraceGenerator(ooi_catalog, ooi_population, affinity, queries_per_user_mean=0)
        with pytest.raises(ValueError):
            TraceGenerator(ooi_catalog, ooi_population, affinity, lognormal_sigma=-1)

    def test_focus_biases_queries(self, ooi_catalog, ooi_population, affinity):
        """Users query their focus region more than its global share."""
        trace = generate_trace(ooi_catalog, ooi_population, affinity, seed=5)
        hits, total = 0, 0
        for u in range(ooi_population.num_users):
            objs = trace.queries_of_user(u)
            hits += (ooi_catalog.object_region[objs] == ooi_population.user_focus_region[u]).sum()
            total += len(objs)
        global_share = np.bincount(ooi_catalog.object_region).max() / ooi_catalog.num_objects
        assert hits / total > global_share
