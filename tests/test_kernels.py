"""Fused cache-blocked kernels: dispatch, gradcheck, and parity oracles.

Every fused op in :mod:`repro.kernels.dispatch` has a per-op chain as its
parity oracle (``REPRO_KERNELS=oracle``); these tests pin the contract from
both sides — analytic gradients against finite differences, and fused
forward/backward against the oracle chain on the shapes that historically
break segment kernels (zero edges, a single relation, repeated endpoints,
empty batches).
"""

import numpy as np
import pytest

from repro.analysis import profiler, sanitizer
from repro.autograd import Parameter, Tensor, functional as F, gradcheck, no_grad
from repro.data.interactions import InteractionDataset
from repro.eval.evaluator import RankingEvaluator
from repro.kernels import dispatch, numba_backend, numpy_backend
from repro.kg.adjacency import CSRAdjacency
from repro.kg.triples import TripleStore
from repro.models import CKAT, CKATConfig
from repro.models.base import FitConfig
from repro.models.ckat.layers import compute_edge_attention
from repro.models.embeddings import TransR


def _store(num_entities, triples):
    store = TripleStore(num_entities)
    by_rel = {}
    for h, r, t in triples:
        by_rel.setdefault(r, []).append((h, t))
    for name in sorted(by_rel):
        pairs = np.asarray(by_rel[name], dtype=np.int64)
        store.add_triples(name, pairs[:, 0], pairs[:, 1])
    return store


@pytest.fixture()
def small_adj():
    """11 edges, 3 relations, repeated endpoints, one duplicated edge."""
    triples = [
        (0, "a", 1), (0, "a", 2), (0, "b", 3), (1, "a", 0), (1, "c", 4),
        (2, "b", 0), (2, "c", 1), (3, "a", 4), (3, "a", 4), (4, "b", 0),
        (4, "c", 2),
    ]
    return CSRAdjacency(_store(6, triples))


@pytest.fixture()
def small_params():
    rng = np.random.default_rng(5)
    ent = Parameter(0.5 * rng.standard_normal((6, 4)))
    rel = Parameter(0.5 * rng.standard_normal((3, 3)))
    proj = Parameter(0.5 * rng.standard_normal((3, 3, 4)))
    return ent, rel, proj


def _small_transr(small_params):
    ent, rel, proj = small_params
    transr = TransR(num_entities=6, num_relations=3, entity_dim=4, relation_dim=3)
    transr.entity_emb, transr.relation_emb, transr.proj = ent, rel, proj
    return transr


def _dense(grad):
    if grad is None:
        return None
    return grad.to_dense() if hasattr(grad, "to_dense") else np.asarray(grad)


# ---------------------------------------------------------------- dispatch
class TestBackendDispatch:
    def test_available_backends_without_numba(self):
        names = dispatch.available_backends()
        assert "numpy" in names and "oracle" in names
        if not numba_backend.AVAILABLE:
            assert "numba" not in names

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_backend", None)
        monkeypatch.setenv(dispatch.ENV_VAR, "auto")
        expected = "numba" if numba_backend.AVAILABLE else "numpy"
        assert dispatch.get_backend() == expected
        monkeypatch.setattr(dispatch, "_backend", None)
        monkeypatch.setenv(dispatch.ENV_VAR, "off")
        assert dispatch.get_backend() == "oracle"
        monkeypatch.setattr(dispatch, "_backend", None)
        monkeypatch.setenv(dispatch.ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="bogus"):
            dispatch.get_backend()

    def test_kernel_backend_restores(self):
        before = dispatch.get_backend()
        with dispatch.kernel_backend("oracle"):
            assert dispatch.get_backend() == "oracle"
            assert not dispatch.fused_enabled()
        assert dispatch.get_backend() == before

    def test_numba_request_fails_loudly_when_absent(self):
        if numba_backend.AVAILABLE:
            pytest.skip("numba importable here; the guard cannot fire")
        with pytest.raises(ValueError, match="numba"):
            dispatch.set_backend("numba")

    def test_numba_backend_stub_raises(self):
        if numba_backend.AVAILABLE:
            pytest.skip("numba importable here; stubs replaced by jits")
        with pytest.raises(RuntimeError, match="numba"):
            numba_backend.edge_attention_scores(None, None, None, None, None, None)


# ---------------------------------------------------------------- gradcheck
class TestGradcheck:
    def test_edge_attention_scores(self, small_adj, small_params):
        ent, rel, proj = small_params
        probe = Tensor(np.linspace(0.5, 1.5, small_adj.num_edges))
        with dispatch.kernel_backend("numpy"):
            assert gradcheck(
                lambda: F.sum(
                    F.mul(
                        dispatch.edge_attention_scores(ent, rel, proj, small_adj),
                        probe,
                    )
                ),
                [ent, rel, proj],
            )

    def test_weighted_neighbor_sum_tensor_weights(self, small_adj):
        rng = np.random.default_rng(6)
        emb = Parameter(rng.standard_normal((6, 4)))
        w = Parameter(rng.standard_normal(small_adj.num_edges))
        probe = Tensor(np.linspace(-1.0, 1.0, 24).reshape(6, 4))
        with dispatch.kernel_backend("numpy"):
            assert gradcheck(
                lambda: F.sum(
                    F.mul(dispatch.weighted_neighbor_sum(emb, w, small_adj), probe)
                ),
                [emb, w],
            )

    def test_weighted_neighbor_sum_frozen_weights(self, small_adj):
        rng = np.random.default_rng(7)
        emb = Parameter(rng.standard_normal((6, 4)))
        w = rng.standard_normal(small_adj.num_edges)  # constant: frozen path
        with dispatch.kernel_backend("numpy"):
            assert gradcheck(
                lambda: F.sum(dispatch.weighted_neighbor_sum(emb, w, small_adj)),
                [emb],
            )

    def test_transr_energy(self, small_params):
        ent, rel, proj = small_params
        heads = np.array([0, 3, 1, 4, 2], dtype=np.int64)
        rels = np.array([2, 0, 1, 0, 2], dtype=np.int64)
        tails = np.array([1, 4, 0, 2, 5], dtype=np.int64)
        with dispatch.kernel_backend("numpy"):
            assert gradcheck(
                lambda: F.sum(
                    dispatch.transr_energy(ent, rel, proj, heads, rels, tails)
                ),
                [ent, rel, proj],
            )


# ------------------------------------------------------------------- parity
class TestAttentionParity:
    def _grads(self, backend, adj, params, upstream):
        ent, rel, proj = params
        for p in params:
            p.grad = None
        with dispatch.kernel_backend(backend):
            scores = compute_edge_attention(ent, rel, proj, adj)
            scores.backward(upstream)
        return scores.data.copy(), [_dense(p.grad) for p in params]

    def test_forward_and_backward_match_oracle(self, small_adj, small_params):
        upstream = np.linspace(-1.0, 1.0, small_adj.num_edges)
        s0, g0 = self._grads("oracle", small_adj, small_params, upstream)
        s1, g1 = self._grads("numpy", small_adj, small_params, upstream)
        np.testing.assert_allclose(s1, s0, rtol=1e-12, atol=1e-14)
        for a, b in zip(g0, g1):
            np.testing.assert_allclose(b, a, rtol=1e-12, atol=1e-13)

    def test_single_relation(self, small_params):
        ent, _, proj = small_params
        adj = CSRAdjacency(_store(6, [(0, "a", 1), (2, "a", 3), (2, "a", 0)]))
        rel1 = Parameter(small_params[1].data[:1].copy())
        proj1 = Parameter(proj.data[:1].copy())
        upstream = np.array([1.0, -2.0, 0.5])
        s0, g0 = self._grads("oracle", adj, (ent, rel1, proj1), upstream)
        s1, g1 = self._grads("numpy", adj, (ent, rel1, proj1), upstream)
        np.testing.assert_allclose(s1, s0, rtol=1e-12, atol=1e-14)
        for a, b in zip(g0, g1):
            np.testing.assert_allclose(b, a, rtol=1e-12, atol=1e-13)

    def test_zero_edges(self, small_params):
        ent, rel, proj = small_params
        for p in (ent, rel, proj):
            p.grad = None
        store = TripleStore(6)
        for name in ("a", "b", "c"):
            store.relations.add(name)
        adj = CSRAdjacency(store)
        assert adj.num_edges == 0
        with dispatch.kernel_backend("numpy"):
            scores = dispatch.edge_attention_scores(ent, rel, proj, adj)
            assert scores.data.shape == (0,)
            F.sum(scores).backward()
        for p in (ent, rel, proj):
            g = _dense(p.grad)
            assert g is None or not np.any(g)

    def test_pool_reuse_is_deterministic(self, small_adj, small_params):
        upstream = np.linspace(-1.0, 1.0, small_adj.num_edges)
        s1, g1 = self._grads("numpy", small_adj, small_params, upstream)
        s2, g2 = self._grads("numpy", small_adj, small_params, upstream)
        assert np.array_equal(s1, s2)
        for a, b in zip(g1, g2):
            assert np.array_equal(a, b)

    def test_inference_path_recycles_buffers(self, small_adj, small_params):
        ent, rel, proj = small_params
        with dispatch.kernel_backend("numpy"), no_grad():
            scores = dispatch.edge_attention_scores(ent, rel, proj, small_adj)
        assert scores._backward is None
        # buffers given back to the pool must not alias the returned values
        with dispatch.kernel_backend("numpy"):
            again = dispatch.edge_attention_scores(ent, rel, proj, small_adj)
        assert np.array_equal(scores.data, again.data)


class TestTransREnergyParity:
    def test_matches_oracle_chain(self, small_params):
        transr = _small_transr(small_params)
        rng = np.random.default_rng(11)
        heads = rng.integers(0, 6, 32).astype(np.int64)
        rels = rng.integers(0, 3, 32).astype(np.int64)
        tails = rng.integers(0, 6, 32).astype(np.int64)
        results = {}
        for backend in ("oracle", "numpy"):
            for p in small_params:
                p.grad = None
            with dispatch.kernel_backend(backend):
                energy = transr.energy(heads, rels, tails)
                F.sum(energy).backward()
            results[backend] = (
                energy.data.copy(),
                [_dense(p.grad) for p in small_params],
            )
        s0, g0 = results["oracle"]
        s1, g1 = results["numpy"]
        np.testing.assert_allclose(s1, s0, rtol=1e-12, atol=1e-13)
        for a, b in zip(g0, g1):
            np.testing.assert_allclose(b, a, rtol=1e-12, atol=1e-13)

    def test_touched_rows_match_oracle(self, small_params):
        """Lazy Adam decays only rows the gradient names — sets must agree."""
        transr = _small_transr(small_params)
        heads = np.array([5, 5, 1], dtype=np.int64)
        rels = np.array([0, 0, 2], dtype=np.int64)
        tails = np.array([2, 1, 5], dtype=np.int64)
        rows = {}
        for backend in ("oracle", "numpy"):
            for p in small_params:
                p.grad = None
            with dispatch.kernel_backend(backend):
                F.sum(transr.energy(heads, rels, tails)).backward()
            rows[backend] = {}
            for name, p in zip(("ent", "rel", "proj"), small_params):
                if hasattr(p.grad, "indices"):
                    touched = np.unique(p.grad.indices)
                else:
                    dense = _dense(p.grad)
                    axes = tuple(range(1, dense.ndim))
                    touched = np.flatnonzero(np.any(dense != 0, axis=axes))
                rows[backend][name] = touched
        for name in ("ent", "rel", "proj"):
            np.testing.assert_array_equal(rows["numpy"][name], rows["oracle"][name])

    def test_empty_batch(self, small_params):
        ent, rel, proj = small_params
        empty = np.zeros(0, dtype=np.int64)
        with dispatch.kernel_backend("numpy"):
            energy = dispatch.transr_energy(ent, rel, proj, empty, empty, empty)
        assert energy.data.shape == (0,)


class TestTrainingParity:
    """End-to-end: fused and oracle land on the same trained CKAT."""

    @pytest.mark.parametrize("dropout", [0.0, 0.3])
    def test_two_epoch_fit_matches_oracle(self, ooi_split, ooi_ckg_best, dropout):
        cfg = CKATConfig(
            dim=16,
            relation_dim=16,
            layer_dims=(16, 8),
            dropout=dropout,
            attention_mode="batch",
        )
        fit_cfg = FitConfig(epochs=2, batch_size=64, seed=3)
        tables = {}
        for backend in ("oracle", "numpy"):
            model = CKAT(
                ooi_split.train.num_users,
                ooi_split.train.num_items,
                ooi_ckg_best,
                cfg,
                seed=3,
            )
            with dispatch.kernel_backend(backend):
                model.fit(ooi_split.train, fit_cfg)
            tables[backend] = {
                "entity": model.transr.entity_emb.data.copy(),
                "relation": model.transr.relation_emb.data.copy(),
                "proj": model.transr.proj.data.copy(),
            }
        for name, ref in tables["oracle"].items():
            # Dropout masks are drawn outside the kernels from the same RNG
            # stream, so the trajectories coincide to reassociation-level
            # rounding (see benchmarks/test_bench_kernels.py for the policy).
            np.testing.assert_allclose(
                tables["numpy"][name], ref, rtol=1e-9, atol=1e-11
            )


# -------------------------------------------------------------- evaluation
class TestEvaluatorParity:
    def _problem(self):
        rng = np.random.default_rng(23)
        users = np.repeat(np.arange(12), 6)
        items = rng.integers(0, 30, users.size)
        train = InteractionDataset(users, items, 12, 30)
        test = InteractionDataset(np.arange(12), rng.integers(0, 30, 12), 12, 30)
        u = rng.standard_normal((12, 8))
        v = rng.standard_normal((30, 8))
        return train, test, u, v

    def test_factors_path_matches_oracle(self):
        train, test, u, v = self._problem()
        ev = RankingEvaluator(train, test, k=5)
        with dispatch.kernel_backend("oracle"):
            ref = ev.evaluate_factors_per_user(u, v)
        with dispatch.kernel_backend("numpy"):
            got = ev.evaluate_factors_per_user(u, v)
        np.testing.assert_array_equal(got.recall, ref.recall)
        np.testing.assert_array_equal(got.ndcg, ref.ndcg)

    def test_float32_score_mode(self):
        train, test, u, v = self._problem()
        with dispatch.kernel_backend("numpy"):
            got = RankingEvaluator(
                train, test, k=5, score_dtype=np.float32
            ).evaluate_factors_per_user(u, v)
            ref = RankingEvaluator(train, test, k=5).evaluate_factors_per_user(u, v)
        # float32 scoring may only reorder exact ties; aggregates agree
        assert abs(got.reduce().recall - ref.reduce().recall) < 1e-6
        assert abs(got.reduce().ndcg - ref.reduce().ndcg) < 1e-6

    def test_empty_test_users(self):
        """Users with no test positives are skipped identically on both paths."""
        train, _, u, v = self._problem()
        rng = np.random.default_rng(29)
        test = InteractionDataset(
            np.zeros(3, dtype=np.int64), rng.integers(0, 30, 3), 12, 30
        )
        ev = RankingEvaluator(train, test, k=5)
        with dispatch.kernel_backend("oracle"):
            ref = ev.evaluate_factors_per_user(u, v)
        with dispatch.kernel_backend("numpy"):
            got = ev.evaluate_factors_per_user(u, v)
        np.testing.assert_array_equal(got.users, ref.users)
        np.testing.assert_array_equal(got.recall, ref.recall)

    def test_masked_topk_empty_batch(self):
        _, _, u, v = self._problem()
        neg = np.empty((4, 30), dtype=np.float64)
        indptr = np.zeros(13, dtype=np.int64)
        top = dispatch.masked_topk(
            u[:0], v, 5, neg, indptr, np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert top.shape == (0, 5)


class TestMaskedTopkValidCounts:
    """Per-row clamping when ``k`` exceeds the unmasked candidates."""

    def _rank(self, u, v, k, indptr, indices, batch, valid=None):
        neg = np.empty((u.shape[0], v.shape[0]), dtype=np.float64)
        return dispatch.masked_topk(u, v, k, neg, indptr, indices, batch, valid_out=valid)

    def test_valid_counts_and_finite_prefix(self):
        rng = np.random.default_rng(41)
        u = rng.standard_normal((3, 4))
        v = rng.standard_normal((6, 4))
        # Row 0 masks 4 of 6 items, row 1 masks none, row 2 masks 2.
        indptr = np.array([0, 4, 4, 6], dtype=np.int64)
        indices = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
        valid = np.empty(3, dtype=np.int64)
        k = 5
        top = self._rank(u, v, k, indptr, indices, np.arange(3), valid)
        assert valid.tolist() == [2, 5, 4]
        scores = u @ v.T
        for row in range(3):
            masked = set(indices[indptr[row] : indptr[row + 1]].tolist())
            real = top[row, : valid[row]]
            # No masked id inside the valid prefix, and the prefix is the
            # true descending top of the unmasked candidates.
            assert not masked & set(real.tolist())
            order = np.argsort(-scores[row])
            expect = [i for i in order if i not in masked][: valid[row]]
            assert real.tolist() == expect

    def test_zero_candidate_row(self):
        """A row with every item masked reports valid == 0."""
        rng = np.random.default_rng(43)
        u = rng.standard_normal((2, 4))
        v = rng.standard_normal((5, 4))
        indptr = np.array([0, 5, 5], dtype=np.int64)
        indices = np.arange(5, dtype=np.int64)
        valid = np.empty(2, dtype=np.int64)
        top = self._rank(u, v, 3, indptr, indices, np.arange(2), valid)
        assert valid.tolist() == [0, 3]
        assert top.shape == (2, 3)

    def test_k_out_of_range_raises(self):
        rng = np.random.default_rng(47)
        u = rng.standard_normal((2, 4))
        v = rng.standard_normal((5, 4))
        indptr = np.zeros(3, dtype=np.int64)
        empty = np.zeros(0, dtype=np.int64)
        for bad_k in (0, -1, 6):
            with pytest.raises(ValueError, match="k must be in"):
                self._rank(u, v, bad_k, indptr, empty, np.arange(2))

    def test_short_valid_out_raises(self):
        rng = np.random.default_rng(53)
        u = rng.standard_normal((3, 4))
        v = rng.standard_normal((5, 4))
        indptr = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError, match="valid_out"):
            self._rank(
                u, v, 2, indptr, np.zeros(0, dtype=np.int64), np.arange(3),
                np.empty(2, dtype=np.int64),
            )


# ------------------------------------------------------- scipy-free fallback
class TestWeightedCSRFallback:
    def test_pure_csr_matches_dense(self, small_adj):
        rng = np.random.default_rng(31)
        w = rng.standard_normal(small_adj.num_edges)
        dense = np.zeros((6, 6))
        np.add.at(dense, (small_adj.heads, small_adj.tails), w)
        default = dispatch.build_weighted_csr(small_adj, w)
        pure = numpy_backend.build_pure_csr(
            small_adj.heads, small_adj.tails, w, (6, 6)
        )
        x = rng.standard_normal((6, 4))
        np.testing.assert_allclose(default @ x, dense @ x, rtol=1e-12)
        np.testing.assert_allclose(pure @ x, dense @ x, rtol=1e-12)

    def test_fallback_used_when_scipy_missing(self, small_adj, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def no_scipy(name, *args, **kwargs):
            if name.startswith("scipy"):
                raise ImportError("scipy disabled for this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_scipy)
        w = np.linspace(0.1, 1.0, small_adj.num_edges)
        matrix = dispatch.build_weighted_csr(small_adj, w)
        assert isinstance(matrix, numpy_backend.PureCSR)
        dense = np.zeros((6, 6))
        np.add.at(dense, (small_adj.heads, small_adj.tails), w)
        np.testing.assert_allclose(matrix @ np.eye(6), dense, rtol=1e-12)


# -------------------------------------------------------- segment reductions
class TestSegmentKernels:
    def test_segment_sum_rows_matches_scatter_add(self):
        rng = np.random.default_rng(41)
        values = rng.standard_normal((50, 3))
        seg_of = np.sort(rng.integers(0, 8, 50))
        perm = np.argsort(seg_of, kind="stable")
        sorted_seg = seg_of[perm]
        starts = np.flatnonzero(np.r_[True, sorted_seg[1:] != sorted_seg[:-1]])
        offsets = np.r_[starts, 50].astype(np.int64)
        got = numpy_backend.segment_sum_rows(values, perm, offsets, block=7)
        expect = np.zeros((len(starts), 3))
        np.add.at(expect, np.searchsorted(sorted_seg[starts], seg_of), values)
        np.testing.assert_allclose(got, expect, rtol=1e-12)

    def test_segment_sum_rows_empty(self):
        got = numpy_backend.segment_sum_rows(
            np.zeros((0, 3)), np.zeros(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
        )
        assert got.shape == (0, 3)

    def test_weighted_backward_fused_matches_parts(self, small_adj):
        rng = np.random.default_rng(43)
        emb = rng.standard_normal((6, 4))
        grad_out = rng.standard_normal((6, 4))
        w = rng.standard_normal(small_adj.num_edges)
        in_order, in_offsets, heads_in, tails_in = small_adj.incoming_edge_groups()
        g_emb, gw_sorted = numpy_backend.weighted_backward_fused(
            grad_out, emb, w[in_order], heads_in, tails_in, in_offsets, block=4
        )
        ref_emb = numpy_backend.weighted_incoming_sum(
            grad_out, w, heads_in, in_order, in_offsets
        )
        ref_gw = numpy_backend.weighted_edge_grad(
            grad_out, emb, small_adj.heads, small_adj.tails
        )
        np.testing.assert_allclose(g_emb, ref_emb, rtol=1e-12)
        gw = np.empty_like(ref_gw)
        gw[in_order] = gw_sorted
        np.testing.assert_array_equal(gw, ref_gw)

    def test_attention_grad_groups_cover_all_edges(self, small_adj):
        groups = small_adj.attention_grad_groups()
        assert groups.head_offsets[-1] == small_adj.num_edges
        assert groups.tail_offsets[-1] == small_adj.num_edges
        # the coalesce target is exactly the touched-entity set
        np.testing.assert_array_equal(
            groups.rows, np.unique(np.r_[small_adj.heads, small_adj.tails])
        )


# ------------------------------------------------------- instrumentation
class TestInstrumentation:
    def test_profiler_times_fused_ops(self, small_adj, small_params):
        ent, rel, proj = small_params
        with dispatch.kernel_backend("numpy"), profiler.profiled() as report:
            scores = dispatch.edge_attention_scores(ent, rel, proj, small_adj)
            F.sum(scores).backward()
        stats = {s.name for s in report.sorted_stats()}
        assert "edge_attention_scores" in stats

    def test_sanitizer_flags_nonfinite_through_fused_op(self, small_adj, small_params):
        _, rel, proj = small_params
        bad = Parameter(small_params[0].data.copy())
        bad.data[0, 0] = np.nan
        with dispatch.kernel_backend("numpy"), sanitizer.sanitized():
            with pytest.raises(sanitizer.SanitizerError):
                dispatch.edge_attention_scores(bad, rel, proj, small_adj)
