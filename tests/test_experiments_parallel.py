"""Parallel experiment fan-out: cells are picklable, executor-independent,
and the parallel table drivers reproduce the serial rows exactly."""

import pickle

import numpy as np
import pytest

from repro.experiments.datasets import load_dataset
from repro.experiments.runner import CellSpec, _run_slug, run_cell, run_cells
from repro.experiments.tables import table2
from repro.parallel.executor import SerialExecutor


@pytest.fixture(scope="module")
def small_ooi():
    return load_dataset("ooi", scale="small", seed=7)


class TestCellSpec:
    def test_picklable_with_dataset_bundle(self, small_ooi):
        spec = CellSpec(label="BPRMF", model="BPRMF", dataset=small_ooi, epochs=1)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.model == "BPRMF"
        assert clone.dataset.name == "ooi"
        np.testing.assert_array_equal(
            clone.dataset.split.train.user_ids, small_ooi.split.train.user_ids
        )

    def test_dataset_by_name_equals_dataset_by_bundle(self, small_ooi):
        by_bundle = run_cell(
            CellSpec(label="c", model="BPRMF", dataset=small_ooi, epochs=1, seed=3)
        )
        by_name = run_cell(
            CellSpec(
                label="c",
                model="BPRMF",
                dataset="ooi",
                dataset_scale="small",
                dataset_seed=7,
                epochs=1,
                seed=3,
            )
        )
        assert by_bundle.recall == by_name.recall
        assert by_bundle.ndcg == by_name.ndcg


class TestRunCells:
    def test_results_in_spec_order(self, small_ooi):
        specs = [
            CellSpec(label=f"s{seed}", model="BPRMF", dataset=small_ooi, epochs=1, seed=seed)
            for seed in (0, 1)
        ]
        out = run_cells(specs, executor=SerialExecutor())
        assert [spec.label for spec, _ in out] == ["s0", "s1"]

    def test_process_fanout_identical_to_serial(self, small_ooi):
        specs = [
            CellSpec(label="a", model="BPRMF", dataset=small_ooi, epochs=1, seed=0),
            CellSpec(label="b", model="BPRMF", dataset=small_ooi, epochs=1, seed=1),
        ]
        serial = run_cells(specs, executor=SerialExecutor())
        parallel = run_cells(specs, num_workers=2)
        for (_, s), (_, p) in zip(serial, parallel):
            assert s.recall == p.recall
            assert s.ndcg == p.ndcg
            assert s.final_loss == p.final_loss


    def test_process_fanout_with_telemetry(self, small_ooi, tmp_path):
        """Worker processes write per-cell JSONL logs and checkpoints."""
        from repro.utils.telemetry import read_run_log

        specs = [
            CellSpec(
                label=label,
                model="BPRMF",
                dataset=small_ooi,
                epochs=1,
                seed=seed,
                log_dir=str(tmp_path / "logs"),
                checkpoint_dir=str(tmp_path / "ckpts"),
                checkpoint_every=1,
            )
            for label, seed in (("a", 0), ("b", 1))
        ]
        run_cells(specs, num_workers=2)
        for label in ("a", "b"):
            slug = _run_slug(label, "ooi")
            events = read_run_log(tmp_path / "logs" / f"{slug}.jsonl")
            assert [e["event"] for e in events].count("epoch") == 1
            assert (tmp_path / "ckpts" / f"{slug}.ckpt.npz").exists()


@pytest.mark.slow
def test_table2_parallel_rows_identical(small_ooi):
    """Acceptance check: reduced Table II grid, parallel == serial."""
    serial, _ = table2([small_ooi], models=("BPRMF",), epochs=2, seed=0)
    parallel, _ = table2([small_ooi], models=("BPRMF",), epochs=2, seed=0, num_workers=2)
    assert serial.keys() == parallel.keys()
    for key in serial:
        assert serial[key].recall == parallel[key].recall
        assert serial[key].ndcg == parallel[key].ndcg
