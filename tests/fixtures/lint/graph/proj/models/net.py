"""Determinism- and dtype-sensitive sink functions, plus in-layer flows."""

import numpy as np

from proj.utils import make_rng


def fit(rng, x):
    """Taint sink: training must only ever see seeded generators."""
    return rng, x


def score(a, b):
    """Dtype sink: mixed float64/float32 operands upcast silently."""
    return a, b


def train_unseeded():
    rng = np.random.default_rng()
    return fit(rng, None)  # expect: RPL011


def train_via_helper():
    rng = make_rng()
    return fit(rng, None)  # expect: RPL011


def train_seeded():
    rng = np.random.default_rng(7)
    return fit(rng, None)
