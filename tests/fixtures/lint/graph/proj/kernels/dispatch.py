"""The sanctioned funnel: escape propagation stops inside this module."""

import numpy as np

from proj.kernels import backend


def scores(x):
    return backend.fast_scores(x)


def store(x, path):
    np.save(path, x)
