"""Raw kernel backend: consumers must reach this through dispatch only."""


def fast_scores(x):
    return x
