"""Helpers the graph rules must see through (none are reported here)."""

import numpy as np


def make_rng(seed=None):
    """Forwarded-seed constructor: unseeded iff ``seed`` is None."""
    return np.random.default_rng(seed)


def slow_io(path):
    """Blocks on file I/O — flagged only at serving-side call sites."""
    with open(path) as fh:
        return fh.read()


def save_helper(x, path):
    """Raw persistence — an escape when reached from a consumer layer."""
    np.save(path, x)
