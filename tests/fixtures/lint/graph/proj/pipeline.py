"""Call-site-sensitive callers: the same helper, seeded and unseeded."""

import numpy as np

from proj.flow import run_fit
from proj.models.net import score


def main_unseeded():
    return run_fit(None, 1)  # expect: RPL011


def main_seeded():
    return run_fit(7, 1)


def main_suppressed():
    return run_fit(None, 2)  # reprolint: disable=RPL011


def mixed_precision():
    a = np.zeros(4)
    b = np.zeros(4, dtype=np.float32)
    return score(a, b)  # expect: RPL012


def uniform_precision():
    a = np.zeros(4, dtype=np.float32)
    b = np.ones(4, dtype=np.float32)
    return score(a, b)


def mixed_suppressed():
    a = np.ones(4)
    b = np.ones(4, dtype=np.float32)
    return score(a, b)  # reprolint: disable=RPL012
