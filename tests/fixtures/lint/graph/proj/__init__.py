"""Fixture project for the interprocedural graph-lint rules.

Laid out like a miniature of the real tree (models/, serving/, eval/,
kernels/) so the path-policy gates apply; tests run the graph engine over
this package with a :class:`GraphConfig` whose ``exempt_paths`` is empty and
whose funnel/backend module names point here.

Violating lines carry a trailing ``# expect: RPLxxx`` marker; the tests
assert the finding set equals the marker set exactly, so every violation
must fire and every clean twin must stay silent.
"""
