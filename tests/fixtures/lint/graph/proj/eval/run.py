"""Consumer-layer persistence and kernel access: RPL014 cases."""

import numpy as np

from proj.kernels import backend, dispatch
from proj.utils import save_helper


def save_direct(x, path):
    np.save(path, x)  # expect: RPL014


def save_via_helper(x, path):
    save_helper(x, path)  # expect: RPL014


def kernel_direct(x):
    return backend.fast_scores(x)  # expect: RPL014


def kernel_via_funnel(x):
    return dispatch.scores(x)


def save_via_funnel(x, path):
    dispatch.store(x, path)


def save_suppressed(x, path):
    np.save(path, x)  # reprolint: disable=RPL014
