"""Async handlers: blocking-call and lock-discipline cases for RPL013."""

import asyncio
import threading
import time

from proj.utils import slow_io


class Counter:
    """Owns a lock; writes outside it from handler-reachable code violate."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self):
        self.total += 1  # expect: RPL013

    def bump_locked(self):
        with self._lock:
            self.total += 1


async def handler(path):
    time.sleep(0.1)  # expect: RPL013
    data = slow_io(path)  # expect: RPL013
    c = Counter()
    c.bump()
    c.bump_locked()
    return data


async def handler_ok(path):
    await asyncio.to_thread(slow_io, path)
    await asyncio.sleep(0.01)
    return None


async def handler_suppressed():
    time.sleep(0.2)  # reprolint: disable=RPL013
    return None
