"""A non-sink helper layer: conditional sinks propagate through here."""

import numpy as np

from proj.models.net import fit


def run_fit(seed, x):
    """Callers passing ``seed=None`` violate RPL011 at *their* call site."""
    rng = np.random.default_rng(seed)
    return fit(rng, x)
