"""Known-bad fixture: pickle-based persistence."""

import pickle  # RPL005

import numpy as np


def save(path, arr):
    np.save(path, arr, allow_pickle=True)  # RPL005


def load(path):
    with open(path, "rb") as fh:
        return pickle.load(fh)
