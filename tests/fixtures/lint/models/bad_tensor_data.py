"""Known-bad fixture: Tensor.data mutation outside no_grad."""


def overwrite(param, arr):
    param.data[...] = arr  # RPL007


def scale(param, factor):
    param.data *= factor  # RPL007
