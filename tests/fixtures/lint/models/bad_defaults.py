"""Known-bad fixture: mutable default arguments."""


def accumulate(value, acc=[]):  # RPL006
    acc.append(value)
    return acc


def tally(key, counts={}):  # RPL006
    counts[key] = counts.get(key, 0) + 1
    return counts
