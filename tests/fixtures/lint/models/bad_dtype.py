"""Known-bad fixture: implicit-dtype array creation on the fast path."""

import numpy as np


def buffers(n):
    scores = np.zeros(n)  # RPL004
    ids = np.arange(n)  # RPL004
    mask = np.ones((n, n))  # RPL004
    return scores, ids, mask
