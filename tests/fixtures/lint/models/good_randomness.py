"""Known-good fixture: randomness threaded through rng/seed parameters."""

import numpy as np


def draw_noise(n, rng):
    return rng.random(n)


def build_generator(seed):
    return np.random.default_rng(seed)


def derived_seed_rng(base, offset=0):
    # Non-constant seed expressions referencing parameters are allowed.
    return np.random.default_rng(base + offset)
