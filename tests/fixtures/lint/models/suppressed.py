"""Fixture: violations silenced by inline suppression comments."""

import numpy as np


def legacy_shim(n):
    return np.random.rand(n)  # reprolint: disable=RPL001


def blanket(n):
    return np.zeros(n), np.random.default_rng()  # reprolint: disable
