"""Known-good fixture: monotonic interval timing is allowed everywhere."""

import time


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start
