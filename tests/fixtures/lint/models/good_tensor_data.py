"""Known-good fixture: .data writes under no_grad or in construction."""

from repro.autograd import no_grad


class Holder:
    def __init__(self, arr):
        self.data = arr  # construction, not mutation


def restore(param, arr):
    with no_grad():
        param.data[...] = arr
