"""Known-good fixture: explicit dtypes and *_like constructors."""

import numpy as np


def buffers(n, template):
    scores = np.zeros(n, dtype=np.float64)
    ids = np.arange(n, dtype=np.int64)
    mask = np.full((n, n), 0.0, np.float32)  # positional dtype counts
    like = np.zeros_like(template)
    return scores, ids, mask, like
