"""Known-bad fixture: wall-clock reads in a result-bearing (models/) path."""

import datetime
import time


def stamp_result(value):
    return value, time.time()  # RPL003


def stamp_with_datetime(value):
    return value, datetime.datetime.now()  # RPL003
