"""Known-bad fixture: every statement below violates RPL001 or RPL002."""

import numpy as np


def draw_noise(n):
    return np.random.rand(n)  # RPL001: legacy global RNG


def reseed_world():
    np.random.seed(0)  # RPL001: global seeding


def entropy_rng():
    return np.random.default_rng()  # RPL001: unseeded


def hardcoded_seed_rng(n):
    rng = np.random.default_rng(0xC0FFEE)  # RPL002: hardcoded seed, no rng param
    return rng.random(n)
