"""Tests for grid search and cold-start harnesses."""

import numpy as np
import pytest

from repro.experiments.coldstart import cold_start_report, slice_users_by_history
from repro.experiments.gridsearch import (
    PAPER_L2_GRID,
    PAPER_LR_GRID,
    grid_search,
)
from repro.models import BPRMF, MostPopular


class TestGridSearch:
    def test_exhaustive_product(self, ooi_split):
        result = grid_search(
            lambda params: BPRMF(
                ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=0
            ),
            ooi_split.train,
            grid={"lr": [0.05, 0.01], "l2": [1e-5, 1e-3]},
            epochs=2,
            batch_size=256,
            seed=0,
        )
        assert len(result.points) == 4
        params_seen = {tuple(sorted(p.params.items())) for p in result.points}
        assert len(params_seen) == 4

    def test_best_is_max_recall(self, ooi_split):
        result = grid_search(
            lambda params: BPRMF(
                ooi_split.train.num_users, ooi_split.train.num_items, dim=8, seed=0
            ),
            ooi_split.train,
            grid={"lr": [0.05, 0.001]},
            epochs=3,
            batch_size=256,
            seed=0,
        )
        assert result.best.recall == max(p.recall for p in result.points)
        assert result.ranking()[0] is result.best

    def test_custom_factory_params_passed(self, ooi_split):
        seen = []

        def factory(params):
            seen.append(params["dim"])
            return BPRMF(
                ooi_split.train.num_users, ooi_split.train.num_items, dim=int(params["dim"]), seed=0
            )

        grid_search(
            factory,
            ooi_split.train,
            grid={"dim": [4, 8]},
            epochs=1,
            batch_size=256,
            seed=0,
        )
        assert sorted(seen) == [4, 8]

    def test_empty_grid_rejected(self, ooi_split):
        with pytest.raises(ValueError):
            grid_search(lambda p: None, ooi_split.train, grid={})

    def test_paper_grids(self):
        assert PAPER_LR_GRID == (0.05, 0.01, 0.005, 0.001)
        assert len(PAPER_L2_GRID) == 8  # 1e-5 … 1e2


class TestColdStart:
    def test_slices_partition_eligible_users(self, ooi_split):
        slices = slice_users_by_history(ooi_split)
        all_users = np.concatenate(list(slices.values()))
        assert len(np.unique(all_users)) == len(all_users)
        assert set(all_users.tolist()) <= set(ooi_split.test.active_users().tolist())

    def test_buckets_respect_bounds(self, ooi_split):
        slices = slice_users_by_history(
            ooi_split, buckets=(("tiny", 0, 3), ("big", 4, 10**9))
        )
        deg = ooi_split.train.user_degree()
        if "tiny" in slices:
            assert (deg[slices["tiny"]] <= 3).all()
        if "big" in slices:
            assert (deg[slices["big"]] >= 4).all()

    def test_report_structure(self, ooi_split):
        pop = MostPopular(ooi_split.train.num_users, ooi_split.train.num_items)
        pop.fit(ooi_split.train)
        results, text = cold_start_report(
            {"MostPopular": pop.score_users},
            ooi_split,
            k=10,
            buckets=(("all", 0, 10**9),),
        )
        assert "MostPopular" in results
        assert "Cold-start" in text
        bucket = list(results["MostPopular"].buckets.values())[0]
        assert 0.0 <= bucket.recall <= 1.0

    def test_no_models_rejected(self, ooi_split):
        with pytest.raises(ValueError):
            cold_start_report({}, ooi_split)


class TestReportAggregation:
    def test_results_index(self, tmp_path):
        from repro.experiments.report import EXPECTED_RESULTS, results_index

        (tmp_path / "table1_ckg_stats.txt").write_text("Table I\n")
        index = results_index(tmp_path)
        assert index["table1_ckg_stats"] is True
        assert index["table2_overall"] is False
        assert set(index) == set(EXPECTED_RESULTS)

    def test_collect_results_lists_missing(self, tmp_path):
        from repro.experiments.report import collect_results

        (tmp_path / "table1_ckg_stats.txt").write_text("Table I content\n")
        report = collect_results(tmp_path)
        assert "Table I content" in report
        assert "missing artifacts" in report

    def test_collect_results_strict(self, tmp_path):
        from repro.experiments.report import collect_results

        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path, strict=True)

    def test_collect_results_complete(self, tmp_path):
        from repro.experiments.report import EXPECTED_RESULTS, collect_results

        for name in EXPECTED_RESULTS:
            (tmp_path / f"{name}.txt").write_text(f"{name} body\n")
        report = collect_results(tmp_path, strict=True)
        assert "missing" not in report
        for name in EXPECTED_RESULTS:
            assert name in report
