"""HTTP front end: round trips, micro-batching, telemetry, kill-and-restart.

Each test spins the asyncio server on an ephemeral port inside
``asyncio.run`` — client and server share one event loop, exactly how the
throughput benchmark drives it.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.data.interactions import InteractionDataset
from repro.models import BPRMF
from repro.serving import (
    RecommendServer,
    RecommendService,
    ScoreIndex,
    ServingClient,
)
from repro.store import ArtifactStore
from repro.utils.telemetry import RunLogger, read_run_log

NUM_USERS, NUM_ITEMS = 30, 25


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(1)
    train = InteractionDataset(
        rng.integers(0, NUM_USERS, 400), rng.integers(0, NUM_ITEMS, 400),
        NUM_USERS, NUM_ITEMS,
    )
    # Untrained embeddings rank deterministically — fine for protocol tests.
    return ScoreIndex.from_model(BPRMF(NUM_USERS, NUM_ITEMS, dim=8, seed=2), train)


def run_with_server(index, scenario, **server_kw):
    """Start a server, run ``scenario(client, server)``, tear down."""

    async def main():
        service = RecommendService(index)
        server = RecommendServer(service, port=0, **server_kw)
        host, port = await server.start()
        try:
            async with ServingClient(host, port) as client:
                return await scenario(client, server)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestHttpRoutes:
    def test_healthz_stats_and_recommend(self, index):
        async def scenario(client, server):
            status, body = await client.get("/healthz")
            assert (status, body) == (200, {"ok": True})
            status, body = await client.recommend(user=3, k=5)
            assert status == 200 and body["user"] == 3
            expect = server.service.recommend_one({"user": 3, "k": 5})
            assert body["items"] == expect["items"]
            assert body["scores"] == expect["scores"]
            status, body = await client.get("/stats")
            assert status == 200 and body["requests_served"] >= 2
            return True

        assert run_with_server(index, scenario)

    def test_foldin_round_trip(self, index):
        async def scenario(client, server):
            status, body = await client.fold_in([1, 2, 3])
            assert status == 200
            handle = body["handle"]
            status, body = await client.recommend(handle=handle, k=5)
            assert status == 200 and body["handle"] == handle
            assert not {1, 2, 3} & set(body["items"])
            # More observed interactions → new handle, different recs.
            status, body2 = await client.fold_in([1, 2, 3, 10, 11, 12])
            assert body2["handle"] != handle
            status, more = await client.recommend(handle=body2["handle"], k=5)
            assert more["items"] != body["items"]
            return True

        assert run_with_server(index, scenario)

    def test_error_statuses(self, index):
        async def scenario(client, server):
            cases = [
                ("GET", f"/recommend?user={NUM_USERS}&k=5", None, 400),
                ("GET", "/recommend?user=0&k=0", None, 400),
                ("GET", "/recommend?user=0&handle=x&k=5", None, 400),
                ("GET", "/recommend?user=abc&k=5", None, 400),
                ("GET", "/recommend?handle=foldin-nope&k=5", None, 400),
                ("POST", "/foldin", {"items": "nope"}, 400),
                ("POST", "/foldin", {"items": [0, NUM_ITEMS]}, 400),
                ("POST", "/foldin", {}, 400),
                ("GET", "/nope", None, 404),
            ]
            for method, path, payload, expect in cases:
                status, body = await client.request(method, path, payload)
                assert status == expect, (method, path, status, body)
                assert "error" in body
            # The connection survives error responses (keep-alive).
            status, _ = await client.get("/healthz")
            assert status == 200
            return True

        assert run_with_server(index, scenario)

    def test_keep_alive_many_requests_one_connection(self, index):
        async def scenario(client, server):
            for i in range(20):
                status, body = await client.recommend(user=i % NUM_USERS, k=4)
                assert status == 200
            return True

        assert run_with_server(index, scenario)


class TestMicroBatching:
    def test_concurrent_requests_coalesce(self, index):
        """Concurrent clients produce at least one multi-request batch, and
        every coalesced response equals its single-request twin."""

        async def main():
            service = RecommendService(index)
            server = RecommendServer(service, port=0, max_batch=32)
            host, port = await server.start()
            clients = [await ServingClient(host, port).connect() for _ in range(12)]

            async def burst(client, worker):
                out = []
                for j in range(5):
                    status, body = await client.recommend(
                        user=(worker * 5 + j) % NUM_USERS, k=5
                    )
                    assert status == 200
                    out.append(body)
                return out

            try:
                results = await asyncio.gather(
                    *[burst(c, i) for i, c in enumerate(clients)]
                )
            finally:
                for c in clients:
                    await c.close()
                await server.stop()
            return service, results

        service, results = asyncio.run(main())
        stats = service.stats()
        assert stats["requests_served"] == 60
        assert stats["max_batch"] > 1, "no request coalescing happened"
        assert stats["batches"] < stats["requests_served"]
        # Batched results == single-request scoring, bit for bit.
        fresh = RecommendService(index)
        for worker, batch in enumerate(results):
            for j, body in enumerate(batch):
                user = (worker * 5 + j) % NUM_USERS
                expect = fresh.recommend_one({"user": user, "k": 5})
                assert body["items"] == expect["items"]
                assert body["scores"] == expect["scores"]

    def test_max_batch_cap_respected(self, index):
        async def main():
            service = RecommendService(index)
            server = RecommendServer(service, port=0, max_batch=3)
            host, port = await server.start()
            clients = [await ServingClient(host, port).connect() for _ in range(8)]
            try:
                await asyncio.gather(
                    *[c.recommend(user=i, k=4) for i, c in enumerate(clients)]
                )
            finally:
                for c in clients:
                    await c.close()
                await server.stop()
            return service.stats()

        stats = asyncio.run(main())
        assert stats["max_batch"] <= 3


class TestTelemetry:
    def test_request_and_batch_events_logged(self, index, tmp_path):
        log_path = tmp_path / "serve.jsonl"

        async def scenario(client, server):
            await client.recommend(user=0, k=5)
            await client.fold_in([1, 2])
            await client.get("/nope")
            return True

        logger = RunLogger(log_path, run_id="serve-test")
        try:
            run_with_server(index, scenario, logger=logger)
        finally:
            logger.close()
        events = read_run_log(log_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "serve_start"
        assert kinds[-1] == "serve_stop"
        requests = [e for e in events if e["event"] == "request"]
        assert [(r["path"], r["status"]) for r in requests] == [
            ("/recommend", 200),
            ("/foldin", 200),
            ("/nope", 404),
        ]
        assert all(r["run_id"] == "serve-test" for r in requests)
        assert any(e["event"] == "batch" and e["size"] >= 1 for e in events)


class TestKillAndRestart:
    def test_restart_from_store_without_dataset(self, index, tmp_path):
        """Freeze → serve → kill → restart from the artifact store alone.

        The second server is built purely from ``ScoreIndex.by_digest`` —
        no model object, no InteractionDataset — and must answer every
        request byte-identically to the first one.
        """
        store = ArtifactStore(tmp_path / "store")
        artifact = index.save(store, {"model": "BPRMF", "seed": 2})
        digest = artifact.digest[:16]

        async def collect(idx):
            service = RecommendService(idx)
            server = RecommendServer(service, port=0)
            host, port = await server.start()
            try:
                async with ServingClient(host, port) as client:
                    out = []
                    for u in range(10):
                        status, body = await client.recommend(user=u, k=5)
                        assert status == 200
                        out.append(body)
                    status, fold = await client.fold_in([1, 2, 3])
                    assert status == 200
                    status, fold_rec = await client.recommend(
                        handle=fold["handle"], k=5
                    )
                    out.append(fold_rec)
                    return out
            finally:
                await server.stop()

        before = asyncio.run(collect(ScoreIndex.by_digest(store, digest)))
        # "Kill": nothing survives but the store directory.
        reloaded = ScoreIndex.by_digest(store, digest)
        assert reloaded is not None
        after = asyncio.run(collect(reloaded))
        assert json.dumps(before, sort_keys=True) == json.dumps(after, sort_keys=True)

    def test_corrupt_store_entry_is_a_miss(self, index, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        artifact = index.save(store, {"model": "BPRMF"})
        (artifact.path / "user_vecs.npy").write_bytes(b"garbage")
        assert ScoreIndex.by_digest(store, artifact.digest[:16]) is None
