"""Fast-path evaluator tests: vectorized vs naive reference, float32 mode,
explicit-subset validation, and sharded-evaluation exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionDataset
from repro.eval import PerUserMetrics, RankingEvaluator, SnapshotScorer, sharded_evaluate
from repro.eval.metrics import ndcg_at_k, precision_at_k, recall_at_k
from repro.parallel.executor import SerialExecutor


def random_split(seed, n_users=12, n_items=40, train_per_user=6, test_per_user=3):
    """Random train/test pair; some users intentionally have no test items."""
    rng = np.random.default_rng(seed)
    tr_u, tr_i, te_u, te_i = [], [], [], []
    for u in range(n_users):
        tr_items = rng.choice(n_items, size=min(train_per_user, n_items), replace=False)
        tr_u += [u] * len(tr_items)
        tr_i += tr_items.tolist()
        if u % 5 != 4:  # every 5th user has no test interactions
            te_items = rng.choice(n_items, size=test_per_user, replace=False)
            te_u += [u] * len(te_items)
            te_i += te_items.tolist()
    train = InteractionDataset(np.array(tr_u), np.array(tr_i), n_users, n_items)
    test = InteractionDataset(np.array(te_u), np.array(te_i), n_users, n_items)
    return train, test


def naive_reference(train, test, table, users, k):
    """Per-user loop over the protocol using the reference metric functions.

    Shares only the top-K selection operator (``argpartition`` + stable
    sort) with the evaluator — tie resolution is *defined* by that operator.
    """
    recalls, ndcgs, precisions, hits = [], [], [], []
    for u in users:
        scores = table[u].astype(np.float64).copy()
        scores[train.items_of_user(int(u))] = -np.inf
        top = np.argpartition(-scores, k - 1)[:k]
        ranked = top[np.argsort(-scores[top], kind="stable")].tolist()
        relevant = set(test.items_of_user(int(u)).tolist())
        recalls.append(recall_at_k(ranked, relevant, k))
        ndcgs.append(ndcg_at_k(ranked, relevant, k))
        precisions.append(precision_at_k(ranked, relevant, k))
        hits.append(1.0 if set(ranked[:k]) & relevant else 0.0)
    return (
        float(np.mean(recalls)),
        float(np.mean(ndcgs)),
        float(np.mean(precisions)),
        float(np.mean(hits)),
    )


class TestVectorizedAgainstNaive:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 5, 17])
    def test_random_datasets_match(self, seed, k):
        train, test = random_split(seed)
        rng = np.random.default_rng(seed + 100)
        table = rng.normal(size=(train.num_users, train.num_items))
        ev = RankingEvaluator(train, test, k=k, user_batch=5)
        result = ev.evaluate(lambda users: table[users])
        r, n, p, h = naive_reference(train, test, table, ev.eval_users, k)
        assert result.recall == pytest.approx(r, abs=1e-12)
        assert result.ndcg == pytest.approx(n, abs=1e-12)
        assert result.precision == pytest.approx(p, abs=1e-12)
        assert result.hit == pytest.approx(h, abs=1e-12)

    def test_matches_legacy_path(self):
        train, test = random_split(3)
        table = np.random.default_rng(9).normal(size=(train.num_users, train.num_items))
        ev = RankingEvaluator(train, test, k=7)
        fast = ev.evaluate(lambda users: table[users])
        legacy = ev.evaluate_legacy(lambda users: table[users])
        assert fast.recall == pytest.approx(legacy.recall, abs=1e-12)
        assert fast.ndcg == pytest.approx(legacy.ndcg, abs=1e-12)
        assert fast.num_users == legacy.num_users

    def test_k_geq_positives(self):
        # k = 4 ≥ the 2 test positives of the single user.
        train = InteractionDataset(np.array([0]), np.array([0]), 1, 6)
        test = InteractionDataset(np.array([0, 0]), np.array([2, 4]), 1, 6)
        table = np.array([[0.0, 1.0, 5.0, 2.0, 4.0, 3.0]])
        ev = RankingEvaluator(train, test, k=4)
        result = ev.evaluate(lambda users: table[users])
        r, n, p, h = naive_reference(train, test, table, np.array([0]), 4)
        assert result.recall == pytest.approx(r, abs=1e-12)
        assert result.ndcg == pytest.approx(n, abs=1e-12)

    def test_full_catalog_training_set(self):
        # User 0's training set covers every item: all scores masked, top-K
        # is an arbitrary-but-deterministic set of masked items.  User 1 is
        # normal.  Both paths must agree exactly.
        n_items = 8
        tr_u = [0] * n_items + [1]
        tr_i = list(range(n_items)) + [0]
        train = InteractionDataset(np.array(tr_u), np.array(tr_i), 2, n_items)
        test = InteractionDataset(np.array([0, 1]), np.array([3, 5]), 2, n_items)
        table = np.random.default_rng(2).normal(size=(2, n_items))
        ev = RankingEvaluator(train, test, k=3)
        fast = ev.evaluate(lambda users: table[users])
        legacy = ev.evaluate_legacy(lambda users: table[users])
        assert fast.recall == pytest.approx(legacy.recall, abs=1e-12)
        assert fast.ndcg == pytest.approx(legacy.ndcg, abs=1e-12)

    def test_single_item_batches(self):
        train, test = random_split(5)
        table = np.random.default_rng(11).normal(size=(train.num_users, train.num_items))
        whole = RankingEvaluator(train, test, k=6, user_batch=1000)
        single = RankingEvaluator(train, test, k=6, user_batch=1)
        a = whole.evaluate_per_user(lambda users: table[users])
        b = single.evaluate_per_user(lambda users: table[users])
        np.testing.assert_array_equal(a.recall, b.recall)
        np.testing.assert_array_equal(a.ndcg, b.ndcg)
        np.testing.assert_array_equal(a.precision, b.precision)
        np.testing.assert_array_equal(a.hit, b.hit)

    def test_float32_agrees_with_float64(self):
        # Integer-valued scores are exactly representable in float32, so the
        # induced rankings — and therefore the metrics — are identical.
        train, test = random_split(8)
        rng = np.random.default_rng(21)
        table = np.stack(
            [rng.permutation(train.num_items) for _ in range(train.num_users)]
        ).astype(np.float64)
        ev64 = RankingEvaluator(train, test, k=9, score_dtype=np.float64)
        ev32 = RankingEvaluator(train, test, k=9, score_dtype=np.float32)
        a = ev64.evaluate(lambda users: table[users])
        b = ev32.evaluate(lambda users: table[users])
        assert a == b


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 12), user_batch=st.integers(1, 7))
def test_fastpath_property(seed, k, user_batch):
    """Property: vectorized == naive reference for random data and batching."""
    train, test = random_split(seed, n_users=8, n_items=20, train_per_user=4, test_per_user=2)
    table = np.random.default_rng(seed + 1).normal(size=(8, 20))
    ev = RankingEvaluator(train, test, k=k, user_batch=user_batch)
    result = ev.evaluate(lambda users: table[users])
    r, n, _, _ = naive_reference(train, test, table, ev.eval_users, k)
    assert result.recall == pytest.approx(r, abs=1e-12)
    assert result.ndcg == pytest.approx(n, abs=1e-12)


class TestExplicitSubsetValidation:
    def test_empty_test_users_rejected_with_ids(self):
        train, test = random_split(0)
        ev = RankingEvaluator(train, test, k=3)
        empty = np.setdiff1d(np.arange(test.num_users), test.active_users())
        assert empty.size > 0
        with pytest.raises(ValueError, match="no test interactions") as err:
            ev.evaluate(lambda users: np.zeros((len(users), train.num_items)), users=empty[:2])
        for uid in empty[:2]:
            assert str(int(uid)) in str(err.value)

    def test_out_of_range_users_rejected(self):
        train, test = random_split(1)
        ev = RankingEvaluator(train, test, k=3)
        with pytest.raises(ValueError, match="out of range"):
            ev.evaluate(
                lambda users: np.zeros((len(users), train.num_items)),
                users=np.array([0, test.num_users + 3]),
            )

    def test_valid_subset_accepted(self):
        train, test = random_split(2)
        ev = RankingEvaluator(train, test, k=3)
        subset = ev.eval_users[:3]
        result = ev.evaluate(lambda users: np.zeros((len(users), train.num_items)), users=subset)
        assert result.num_users == 3

    def test_invalid_score_dtype_rejected(self):
        train, test = random_split(2)
        with pytest.raises(ValueError, match="score_dtype"):
            RankingEvaluator(train, test, k=3, score_dtype=np.int32)


class TestPerUserMetrics:
    def test_reduce_matches_evaluate(self):
        train, test = random_split(4)
        table = np.random.default_rng(5).normal(size=(train.num_users, train.num_items))
        ev = RankingEvaluator(train, test, k=4)
        per_user = ev.evaluate_per_user(lambda users: table[users])
        assert per_user.reduce() == ev.evaluate(lambda users: table[users])

    def test_concatenate_shards_rebuilds_serial(self):
        train, test = random_split(6)
        table = np.random.default_rng(7).normal(size=(train.num_users, train.num_items))
        ev = RankingEvaluator(train, test, k=4)
        full = ev.evaluate_per_user(lambda users: table[users])
        mid = len(ev.eval_users) // 2
        parts = [
            ev.evaluate_per_user(lambda users: table[users], users=ev.eval_users[:mid]),
            ev.evaluate_per_user(lambda users: table[users], users=ev.eval_users[mid:]),
        ]
        merged = PerUserMetrics.concatenate(parts)
        np.testing.assert_array_equal(merged.users, full.users)
        np.testing.assert_array_equal(merged.recall, full.recall)
        np.testing.assert_array_equal(merged.ndcg, full.ndcg)
        assert merged.reduce() == full.reduce()

    def test_concatenate_validation(self):
        with pytest.raises(ValueError):
            PerUserMetrics.concatenate([])
        train, test = random_split(6)
        table = np.random.default_rng(7).normal(size=(train.num_users, train.num_items))
        a = RankingEvaluator(train, test, k=3).evaluate_per_user(lambda u: table[u])
        b = RankingEvaluator(train, test, k=4).evaluate_per_user(lambda u: table[u])
        with pytest.raises(ValueError, match="different k"):
            PerUserMetrics.concatenate([a, b])

    def test_reduce_empty_rejected(self):
        empty = PerUserMetrics(
            users=np.array([], dtype=np.int64),
            recall=np.array([]),
            ndcg=np.array([]),
            precision=np.array([]),
            hit=np.array([]),
            k=3,
        )
        with pytest.raises(ValueError):
            empty.reduce()


class TestShardedEvaluate:
    def test_serial_shards_bit_identical(self):
        train, test = random_split(10)
        table = np.random.default_rng(13).normal(size=(train.num_users, train.num_items))
        ev = RankingEvaluator(train, test, k=5, user_batch=3)
        serial = ev.evaluate(lambda users: table[users])
        for shards in (1, 2, 5, 100):
            sharded = sharded_evaluate(
                ev, lambda users: table[users], num_shards=shards, executor=SerialExecutor()
            )
            assert sharded == serial

    def test_num_shards_validated(self):
        train, test = random_split(10)
        ev = RankingEvaluator(train, test, k=5)
        with pytest.raises(ValueError):
            sharded_evaluate(ev, lambda users: None, num_shards=0)

    def test_snapshot_scorer_requires_callable(self):
        with pytest.raises(TypeError):
            SnapshotScorer("not-callable")

    def test_snapshot_scorer_roundtrip(self, tmp_path):
        import pickle

        from repro.io import save_parameters
        from repro.models import BPRMF

        train, test = random_split(12, n_users=10, n_items=25)
        model = BPRMF(train.num_users, train.num_items, dim=4, seed=0)
        path = tmp_path / "snap.npz"
        save_parameters(path, model)
        scorer = SnapshotScorer(
            BPRMF, (train.num_users, train.num_items), {"dim": 4, "seed": 1}, checkpoint=path
        )
        clone = pickle.loads(pickle.dumps(scorer))
        np.testing.assert_array_equal(
            scorer(np.arange(3)), clone(np.arange(3))
        )
        # The checkpoint, not the factory seed, determines the scores.
        np.testing.assert_array_equal(scorer(np.arange(3)), model.score_users(np.arange(3)))
