"""Trivial-baseline tests: MostPopular and Random sanity anchors."""

import numpy as np
import pytest

from repro.eval import RankingEvaluator
from repro.models import BPRMF, MostPopular, RandomRecommender
from repro.models.base import FitConfig


class TestMostPopular:
    def test_ranks_by_popularity(self, ooi_split):
        model = MostPopular(ooi_split.train.num_users, ooi_split.train.num_items)
        model.fit(ooi_split.train)
        recs = model.recommend(0, k=5)
        degrees = ooi_split.train.item_degree()
        assert (np.diff(degrees[recs]) <= 0).all()

    def test_same_ranking_for_all_users(self, ooi_split):
        model = MostPopular(ooi_split.train.num_users, ooi_split.train.num_items)
        model.fit(ooi_split.train)
        scores = model.score_users(np.array([0, 1, 2]))
        np.testing.assert_array_equal(scores[0], scores[1])

    def test_unfit_rejected(self, ooi_split):
        model = MostPopular(ooi_split.train.num_users, ooi_split.train.num_items)
        with pytest.raises(RuntimeError):
            model.score_users(np.array([0]))

    def test_shape_mismatch_rejected(self, ooi_split):
        model = MostPopular(3, 3)
        with pytest.raises(ValueError):
            model.fit(ooi_split.train)

    def test_no_parameters(self, ooi_split):
        assert MostPopular(3, 3).parameters() == []


class TestRandomRecommender:
    def test_deterministic_per_user(self, ooi_split):
        model = RandomRecommender(ooi_split.train.num_users, ooi_split.train.num_items, seed=0)
        a = model.score_users(np.array([3]))
        b = model.score_users(np.array([3]))
        np.testing.assert_array_equal(a, b)

    def test_different_users_differ(self, ooi_split):
        model = RandomRecommender(ooi_split.train.num_users, ooi_split.train.num_items, seed=0)
        scores = model.score_users(np.array([0, 1]))
        assert not np.array_equal(scores[0], scores[1])

    def test_batching_invariant(self, ooi_split):
        model = RandomRecommender(ooi_split.train.num_users, ooi_split.train.num_items, seed=0)
        together = model.score_users(np.array([0, 5]))
        alone = model.score_users(np.array([5]))
        np.testing.assert_array_equal(together[1], alone[0])


class TestSanityOrdering:
    def test_learned_model_beats_trivial_baselines(self, ooi_split):
        """BPRMF must beat Random decisively; MostPopular must beat Random.

        (On the miniature test dataset raw popularity is a genuinely strong
        signal, so we only require the learned model to be in MostPopular's
        league, not strictly above it — the full-scale ordering is asserted
        by the Table-II bench.)
        """
        ev = RankingEvaluator(ooi_split.train, ooi_split.test, k=10)
        learned = BPRMF(ooi_split.train.num_users, ooi_split.train.num_items, dim=16, seed=0)
        learned.fit(ooi_split.train, FitConfig(epochs=20, batch_size=256, lr=0.01, seed=0))
        pop = MostPopular(ooi_split.train.num_users, ooi_split.train.num_items)
        pop.fit(ooi_split.train)
        rand = RandomRecommender(ooi_split.train.num_users, ooi_split.train.num_items, seed=0)
        r_learned = ev.evaluate(learned.score_users).recall
        r_pop = ev.evaluate(pop.score_users).recall
        r_rand = ev.evaluate(rand.score_users).recall
        assert r_learned > r_rand * 2
        assert r_learned > 0.6 * r_pop
        assert r_pop > r_rand
