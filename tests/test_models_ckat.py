"""CKAT model tests: attention, aggregators, propagation, training modes."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import CKAT, CKATConfig
from repro.models.base import FitConfig
from repro.kg.adjacency import CSRAdjacency
from repro.kg.triples import TripleStore
from repro.models.ckat.layers import (
    ConcatAggregator,
    PropagationLayer,
    SumAggregator,
    build_weighted_adjacency,
    compute_edge_attention,
    uniform_edge_weights,
)
from repro.models.embeddings import TransE, TransR, corrupt_triples


@pytest.fixture(scope="module")
def ckat_model(ooi_split, ooi_ckg_best):
    return CKAT(
        ooi_split.train.num_users,
        ooi_split.train.num_items,
        ooi_ckg_best,
        CKATConfig(dim=16, relation_dim=16, layer_dims=(16, 8)),
        seed=0,
    )


class TestCKATConfig:
    def test_defaults_follow_paper(self):
        cfg = CKATConfig()
        assert cfg.dim == 64
        assert cfg.layer_dims == (64, 32, 16)
        assert cfg.aggregator == "concat"
        assert cfg.depth == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CKATConfig(dim=0)
        with pytest.raises(ValueError):
            CKATConfig(layer_dims=())
        with pytest.raises(ValueError):
            CKATConfig(aggregator="mean")
        with pytest.raises(ValueError):
            CKATConfig(attention_mode="never")
        with pytest.raises(ValueError):
            CKATConfig(dropout=1.0)


class TestAttention:
    def test_weights_sum_to_one_per_head(self, ckat_model):
        adj = ckat_model.adj
        w = ckat_model._edge_weights
        sums = np.add.reduceat(w, adj.offsets[:-1][np.diff(adj.offsets) > 0])
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_uniform_weights_are_inverse_degree(self, ckat_model):
        adj = ckat_model.adj
        w = uniform_edge_weights(adj)
        degrees = adj.degree()
        seg = np.repeat(np.arange(adj.num_entities), degrees)
        np.testing.assert_allclose(w, 1.0 / degrees[seg])

    def test_attention_changes_after_transr_update(self, ckat_model):
        before = ckat_model._edge_weights.copy()
        ckat_model.transr.entity_emb.data += 0.05
        ckat_model.refresh_attention()
        after = ckat_model._edge_weights
        assert not np.allclose(before, after)
        ckat_model.transr.entity_emb.data -= 0.05
        ckat_model.refresh_attention()

    def test_attention_differentiable_in_batch_mode(self, ooi_split, ooi_ckg_best):
        model = CKAT(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            CKATConfig(dim=8, relation_dim=8, layer_dims=(8,), attention_mode="batch"),
            seed=0,
        )
        rng = np.random.default_rng(0)
        loss = model.batch_loss(np.array([0, 1]), np.array([0, 1]), np.array([2, 3]), rng)
        loss.backward()
        # Gradients must reach the relation projection through attention.
        assert model.transr.proj.grad is not None
        assert np.abs(model.transr.proj.grad).sum() > 0

    def test_weighted_adjacency_matches_segments(self, ckat_model):
        adj = ckat_model.adj
        A = build_weighted_adjacency(adj, ckat_model._edge_weights)
        x = np.random.default_rng(0).normal(size=(adj.num_entities, 4))
        via_sparse = A @ x
        manual = np.zeros_like(via_sparse)
        np.add.at(manual, adj.heads, ckat_model._edge_weights[:, None] * x[adj.tails])
        np.testing.assert_allclose(via_sparse, manual, atol=1e-10)


class TestAggregators:
    def test_concat_output_shape(self, rng):
        agg = ConcatAggregator(6, 4, rng)
        out = agg(Tensor(np.ones((3, 6))), Tensor(np.ones((3, 6))))
        assert out.shape == (3, 4)

    def test_sum_output_shape(self, rng):
        agg = SumAggregator(6, 4, rng)
        out = agg(Tensor(np.ones((3, 6))), Tensor(np.ones((3, 6))))
        assert out.shape == (3, 4)

    def test_sum_additivity(self, rng):
        # For the sum aggregator, swapping self/neighbor roles is symmetric.
        agg = SumAggregator(4, 4, rng)
        a, b = Tensor(np.ones((2, 4))), Tensor(np.full((2, 4), 2.0))
        np.testing.assert_allclose(agg(a, b).data, agg(b, a).data)

    def test_invalid_aggregator_name(self, rng):
        with pytest.raises(ValueError):
            PropagationLayer(4, 4, aggregator="max", rng=rng)

    def test_invalid_dropout(self, rng):
        with pytest.raises(ValueError):
            PropagationLayer(4, 4, aggregator="sum", rng=rng, dropout=1.0)


class TestPropagation:
    def test_propagate_shape(self, ckat_model, ooi_ckg_best):
        out = ckat_model.propagate()
        assert out.shape == (ooi_ckg_best.num_entities, 16 + 16 + 8)

    def test_sparse_path_matches_segment_path(self, ckat_model):
        layer = ckat_model.layers[0]
        emb = ckat_model.transr.entity_emb
        adj = ckat_model.adj
        with no_grad():
            via_segments = layer(emb, adj, ckat_model._edge_weights)
            via_sparse = layer(
                emb, adj, ckat_model._edge_weights, sparse_matrix=ckat_model._sparse_adj
            )
        np.testing.assert_allclose(via_segments.data, via_sparse.data, atol=1e-9)

    def test_isolated_entity_keeps_self_signal(self, ckat_model):
        # Entities with no edges receive zero neighborhood; their output is
        # agg(e, 0) which must be finite.
        out = ckat_model.propagate()
        assert np.isfinite(out.data).all()

    def test_entity_representations_no_tape(self, ckat_model):
        reps = ckat_model.entity_representations()
        assert isinstance(reps, np.ndarray)


class TestNormalizeAblation:
    def _build(self, ooi_split, ooi_ckg_best, normalize):
        return CKAT(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            CKATConfig(
                dim=8, relation_dim=8, layer_dims=(8, 4), dropout=0.0, normalize=normalize
            ),
            seed=0,
        )

    def test_flag_reaches_every_layer(self, ooi_split, ooi_ckg_best):
        model = self._build(ooi_split, ooi_ckg_best, normalize=False)
        assert all(not layer.normalize for layer in model.layers)
        model = self._build(ooi_split, ooi_ckg_best, normalize=True)
        assert all(layer.normalize for layer in model.layers)

    def test_ablation_changes_propagation_output(self, ooi_split, ooi_ckg_best):
        with no_grad():
            normalized = self._build(ooi_split, ooi_ckg_best, normalize=True).propagate().data
            raw = self._build(ooi_split, ooi_ckg_best, normalize=False).propagate().data
        assert normalized.shape == raw.shape
        assert not np.allclose(normalized, raw)

    def test_layer_slices_have_unit_norm_only_when_normalized(self, ooi_split, ooi_ckg_best):
        """Eq. 10 concatenates per-layer outputs; with normalize=True each
        layer's slice has unit row norms, the ablation leaves them raw."""
        with no_grad():
            normalized = self._build(ooi_split, ooi_ckg_best, normalize=True).propagate().data
            raw = self._build(ooi_split, ooi_ckg_best, normalize=False).propagate().data
        sl = slice(8, 16)  # first propagation layer's slice (after the dim=8 embedding)
        norm_rows = np.linalg.norm(normalized[:, sl], axis=1)
        np.testing.assert_allclose(norm_rows[norm_rows > 1e-8], 1.0, atol=1e-6)
        raw_rows = np.linalg.norm(raw[:, sl], axis=1)
        assert not np.allclose(raw_rows[raw_rows > 1e-8], 1.0, atol=1e-6)


class TestDegenerateGraph:
    """A CKG with zero triples (e.g. an empty facility catalog) must yield
    well-formed empty attention and self-only propagation, not crash."""

    @pytest.fixture()
    def empty_adj(self):
        return CSRAdjacency(TripleStore(num_entities=5))

    def test_zero_edge_attention_is_empty(self, empty_adj, rng):
        entity = Tensor(rng.normal(size=(5, 4)))
        relation = Tensor(rng.normal(size=(1, 3)))
        proj = Tensor(rng.normal(size=(1, 3, 4)))
        att = compute_edge_attention(entity, relation, proj, empty_adj)
        assert att.shape == (0,)
        assert att.data.dtype == np.float64

    def test_zero_edge_propagation_is_self_only(self, empty_adj, rng):
        layer = PropagationLayer(4, 3, aggregator="concat", rng=rng, dropout=0.0)
        emb = Tensor(rng.normal(size=(5, 4)))
        with no_grad():
            out = layer(emb, empty_adj, np.zeros(0))
        assert out.shape == (5, 3)
        assert np.isfinite(out.data).all()
        # Zero neighborhood: output must equal agg(e, 0) exactly.
        with no_grad():
            expected = layer.aggregator(emb, Tensor(np.zeros((5, 4))))
        np.testing.assert_array_equal(out.data, expected.data)

    def test_uniform_weights_empty_graph(self, empty_adj):
        assert uniform_edge_weights(empty_adj).shape == (0,)


class TestCKATTraining:
    def test_loss_decreases(self, ooi_split, ooi_ckg_best):
        model = CKAT(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            CKATConfig(dim=16, relation_dim=16, layer_dims=(16,), kg_steps_per_epoch=2),
            seed=0,
        )
        result = model.fit(ooi_split.train, FitConfig(epochs=4, batch_size=256, lr=0.01, seed=0))
        assert result.losses[-1] < result.losses[0]
        assert all(np.isfinite(result.losses))

    def test_transr_phase_reported(self, ooi_split, ooi_ckg_best):
        model = CKAT(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            CKATConfig(dim=8, relation_dim=8, layer_dims=(8,), kg_steps_per_epoch=2),
            seed=0,
        )
        result = model.fit(ooi_split.train, FitConfig(epochs=2, batch_size=256, seed=0))
        assert len(result.extra_losses) == 2
        assert all(l >= 0 for l in result.extra_losses)

    def test_depth_variants_build(self, ooi_split, ooi_ckg_best):
        for dims in [(16,), (16, 8), (16, 8, 4)]:
            model = CKAT(
                ooi_split.train.num_users,
                ooi_split.train.num_items,
                ooi_ckg_best,
                CKATConfig(dim=16, relation_dim=16, layer_dims=dims),
                seed=0,
            )
            expected_dim = 16 + sum(dims)
            assert model.propagate().shape[1] == expected_dim

    def test_without_attention_trains(self, ooi_split, ooi_ckg_best):
        model = CKAT(
            ooi_split.train.num_users,
            ooi_split.train.num_items,
            ooi_ckg_best,
            CKATConfig(dim=8, relation_dim=8, layer_dims=(8,), use_attention=False),
            seed=0,
        )
        result = model.fit(ooi_split.train, FitConfig(epochs=2, batch_size=256, seed=0))
        assert np.isfinite(result.losses).all()

    def test_score_users_shape(self, ckat_model, ooi_split):
        scores = ckat_model.score_users(np.array([0, 1]))
        assert scores.shape == (2, ooi_split.train.num_items)

    def test_parameters_complete(self, ckat_model):
        params = ckat_model.parameters()
        # TransR: entity + relation + proj; per layer: W + b.
        assert len(params) == 3 + 2 * len(ckat_model.layers)


class TestTransR:
    def test_energy_nonnegative(self, rng):
        tr = TransR(num_entities=10, num_relations=3, entity_dim=4, relation_dim=4, seed=0)
        e = tr.energy(np.array([0, 1]), np.array([0, 2]), np.array([3, 4]))
        assert (e.data >= 0).all()

    def test_project_grouped_matches_naive(self, rng):
        tr = TransR(num_entities=10, num_relations=3, entity_dim=4, relation_dim=5, seed=0)
        rels = np.array([2, 0, 1, 0, 2])
        ents = np.array([1, 3, 5, 7, 9])
        grouped = tr.project(rels, ents).data
        naive = np.stack(
            [tr.proj.data[r] @ tr.entity_emb.data[e] for r, e in zip(rels, ents)]
        )
        np.testing.assert_allclose(grouped, naive, atol=1e-12)

    def test_margin_loss_nonnegative(self, rng):
        tr = TransR(num_entities=10, num_relations=2, entity_dim=4, relation_dim=4, seed=0)
        loss = tr.margin_loss(np.array([0, 1]), np.array([0, 1]), np.array([2, 3]), rng)
        assert loss.item() >= 0

    def test_shared_entity_embedding(self, rng):
        from repro.autograd import Parameter

        shared = Parameter(np.zeros((10, 4)))
        tr = TransR(10, 2, 4, 4, seed=0, shared_entity_embedding=shared)
        assert tr.entity_emb is shared

    def test_shared_embedding_shape_checked(self):
        from repro.autograd import Parameter

        with pytest.raises(ValueError):
            TransR(10, 2, 4, 4, shared_entity_embedding=Parameter(np.zeros((5, 4))))

    def test_training_reduces_energy_of_true_triples(self, ooi_ckg_best, rng):
        from repro.autograd import Adam

        store = ooi_ckg_best.store
        tr = TransR(ooi_ckg_best.num_entities, store.num_relations, 8, 8, seed=0)
        opt = Adam(tr.parameters(), lr=0.01)
        h, r, t = store.heads[:512], store.rels[:512], store.tails[:512]
        before = tr.energy(h, r, t).data.mean()
        for _ in range(30):
            opt.zero_grad()
            loss = tr.margin_loss(h, r, t, rng)
            loss.backward()
            opt.step()
        after = tr.energy(h, r, t).data.mean()
        assert after < before


class TestTransE:
    def test_energy_zero_for_perfect_translation(self):
        te = TransE(num_entities=3, num_relations=1, dim=2, seed=0)
        te.entity_emb.data[0] = [0.0, 0.0]
        te.entity_emb.data[1] = [1.0, 1.0]
        te.relation_emb.data[0] = [1.0, 1.0]
        e = te.energy(np.array([0]), np.array([0]), np.array([1]))
        np.testing.assert_allclose(e.data, [0.0], atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransE(0, 1, 4)


class TestCorruptTriples:
    def test_exactly_one_side_changes_or_same_entity(self, rng):
        heads = np.arange(50)
        tails = np.arange(50, 100)
        ch, ct = corrupt_triples(heads, tails, num_entities=200, rng=rng)
        for i in range(50):
            # One side must remain intact.
            assert ch[i] == heads[i] or ct[i] == tails[i]

    def test_shapes(self, rng):
        ch, ct = corrupt_triples(np.zeros(7, dtype=int), np.ones(7, dtype=int), 10, rng)
        assert len(ch) == len(ct) == 7


class TestAttentionModes:
    def test_batch_and_epoch_agree_at_init(self, ooi_split, ooi_ckg_best):
        """Immediately after construction the frozen attention equals the
        freshly-computed one, so both modes score identically."""
        cfg_epoch = CKATConfig(
            dim=8, relation_dim=8, layer_dims=(8,), dropout=0.0, attention_mode="epoch"
        )
        cfg_batch = CKATConfig(
            dim=8, relation_dim=8, layer_dims=(8,), dropout=0.0, attention_mode="batch"
        )
        m_epoch = CKAT(
            ooi_split.train.num_users, ooi_split.train.num_items, ooi_ckg_best, cfg_epoch, seed=3
        )
        m_batch = CKAT(
            ooi_split.train.num_users, ooi_split.train.num_items, ooi_ckg_best, cfg_batch, seed=3
        )
        with no_grad():
            a = m_epoch.propagate().data
            b = m_batch.propagate().data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_epoch_mode_uses_sparse_path(self, ckat_model):
        assert ckat_model._sparse_adj is not None
        assert ckat_model._sparse_adj.shape == (
            ckat_model.ckg.num_entities,
            ckat_model.ckg.num_entities,
        )
