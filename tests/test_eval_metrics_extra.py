"""Extra evaluator/metric edge cases and consistency properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionDataset
from repro.eval import RankingEvaluator
from repro.eval.metrics import ndcg_at_k, recall_at_k


class TestMetricEdgeCases:
    def test_recall_with_more_relevant_than_k(self):
        # 5 relevant items, k=2, both hits → recall 2/5.
        assert recall_at_k([1, 2], {1, 2, 3, 4, 5}, k=2) == pytest.approx(0.4)

    def test_ndcg_with_more_relevant_than_k_can_reach_one(self):
        # Ideal DCG truncates at k, so a full top-k of hits scores 1.0.
        assert ndcg_at_k([1, 2], {1, 2, 3, 4, 5}, k=2) == pytest.approx(1.0)

    def test_ranked_shorter_than_k(self):
        assert recall_at_k([7], {7}, k=5) == 1.0

    def test_positional_contract_on_duplicates(self):
        # The metric is positional: it trusts the caller to pass a
        # duplicate-free ranking (argpartition output always is).  With
        # duplicates every occurrence counts — documenting the contract.
        assert recall_at_k([3, 3, 3], {3}, k=3) == 3.0


class TestEvaluatorTies:
    def test_tied_scores_deterministic(self):
        train = InteractionDataset(np.array([0]), np.array([0]), 1, 5)
        test = InteractionDataset(np.array([0]), np.array([3]), 1, 5)
        ev = RankingEvaluator(train, test, k=2)
        # All remaining items tie at score 0 — evaluation must be stable.
        a = ev.evaluate(lambda users: np.zeros((len(users), 5)))
        b = ev.evaluate(lambda users: np.zeros((len(users), 5)))
        assert a.recall == b.recall

    def test_all_items_masked_except_test(self):
        train = InteractionDataset(np.array([0, 0, 0]), np.array([0, 1, 2]), 1, 4)
        test = InteractionDataset(np.array([0]), np.array([3]), 1, 4)
        ev = RankingEvaluator(train, test, k=1)
        # Only item 3 survives masking → guaranteed hit regardless of scores.
        result = ev.evaluate(lambda users: np.zeros((len(users), 4)))
        assert result.recall == 1.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_evaluator_recall_between_hit_bounds(seed):
    """Property: hit@K ≥ recall@K and precision@K ≤ recall@K·|rel|/K."""
    rng = np.random.default_rng(seed)
    n_users, n_items = 6, 30
    pairs = set()
    for u in range(n_users):
        for i in rng.choice(n_items, size=6, replace=False):
            pairs.add((u, int(i)))
    pairs = sorted(pairs)
    users = np.array([p[0] for p in pairs])
    items = np.array([p[1] for p in pairs])
    half = len(pairs) // 2
    train = InteractionDataset(users[:half], items[:half], n_users, n_items)
    test = InteractionDataset(users[half:], items[half:], n_users, n_items)
    if len(test) == 0:
        return
    ev = RankingEvaluator(train, test, k=5)
    table = rng.normal(size=(n_users, n_items))
    result = ev.evaluate(lambda batch: table[batch])
    assert result.hit >= result.recall - 1e-12
    assert 0.0 <= result.precision <= 1.0
