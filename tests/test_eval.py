"""Metric and evaluator tests, including a cross-check of the vectorized
evaluator against the reference per-user metric functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionDataset, TrainTestSplit
from repro.eval import RankingEvaluator
from repro.eval.metrics import (
    average_precision_at_k,
    dcg_at_k,
    hit_at_k,
    mrr_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)


class TestMetricsHandComputed:
    def test_recall(self):
        assert recall_at_k([1, 2, 3], {2, 9}, k=3) == 0.5

    def test_recall_empty_relevant(self):
        assert recall_at_k([1, 2], set(), k=2) == 0.0

    def test_precision(self):
        assert precision_at_k([1, 2, 3, 4], {1, 3}, k=4) == 0.5

    def test_hit(self):
        assert hit_at_k([5, 6], {6}, k=2) == 1.0
        assert hit_at_k([5, 6], {7}, k=2) == 0.0

    def test_dcg(self):
        gains = np.array([1.0, 0.0, 1.0])
        expected = 1.0 + 1.0 / np.log2(4)
        np.testing.assert_allclose(dcg_at_k(gains), expected)

    def test_ndcg_perfect_is_one(self):
        assert ndcg_at_k([1, 2], {1, 2}, k=2) == pytest.approx(1.0)

    def test_ndcg_position_matters(self):
        early = ndcg_at_k([1, 9, 8], {1}, k=3)
        late = ndcg_at_k([9, 8, 1], {1}, k=3)
        assert early > late

    def test_ndcg_bounded(self):
        assert 0.0 <= ndcg_at_k([3, 1, 4], {1, 5, 9}, k=3) <= 1.0

    def test_mrr(self):
        assert mrr_at_k([9, 1, 8], {1}, k=3) == 0.5
        assert mrr_at_k([9, 8], {1}, k=2) == 0.0

    def test_average_precision(self):
        # relevant at positions 1 and 3: AP = (1/1 + 2/3)/2
        np.testing.assert_allclose(
            average_precision_at_k([1, 9, 2], {1, 2}, k=3), (1.0 + 2 / 3) / 2
        )

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            recall_at_k([1], {1}, k=0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 10))
def test_metric_bounds_property(seed, k):
    """Property: all metrics lie in [0, 1] for arbitrary rankings."""
    rng = np.random.default_rng(seed)
    ranked = rng.permutation(20)[:15].tolist()
    relevant = set(rng.choice(20, size=rng.integers(1, 6), replace=False).tolist())
    for fn in (recall_at_k, precision_at_k, hit_at_k, ndcg_at_k, mrr_at_k, average_precision_at_k):
        value = fn(ranked, relevant, k)
        assert 0.0 <= value <= 1.0, fn.__name__


def make_split():
    # 3 users, 6 items; train/test constructed by hand.
    train = InteractionDataset(
        np.array([0, 0, 1, 2]), np.array([0, 1, 2, 3]), num_users=3, num_items=6
    )
    test = InteractionDataset(
        np.array([0, 1, 1]), np.array([2, 4, 5]), num_users=3, num_items=6
    )
    return TrainTestSplit(train=train, test=test)


class TestRankingEvaluator:
    def test_perfect_oracle_scores(self):
        split = make_split()
        ev = RankingEvaluator(split.train, split.test, k=2)

        def oracle(users):
            scores = np.zeros((len(users), 6))
            for row, u in enumerate(users):
                scores[row, split.test.items_of_user(int(u))] = 10.0
            return scores

        result = ev.evaluate(oracle)
        assert result.recall == pytest.approx(1.0)
        assert result.ndcg == pytest.approx(1.0)
        assert result.num_users == 2  # user 2 has no test items

    def test_train_items_masked(self):
        split = make_split()
        ev = RankingEvaluator(split.train, split.test, k=2)

        def train_lover(users):
            # Highest scores on training items — must be masked out.
            scores = np.zeros((len(users), 6))
            for row, u in enumerate(users):
                scores[row, split.train.items_of_user(int(u))] = 100.0
                scores[row, split.test.items_of_user(int(u))] = 1.0
            return scores

        result = ev.evaluate(train_lover)
        assert result.recall == pytest.approx(1.0)

    def test_random_scores_match_reference_metrics(self):
        split = make_split()
        ev = RankingEvaluator(split.train, split.test, k=3)
        rng = np.random.default_rng(0)
        table = rng.normal(size=(3, 6))

        result = ev.evaluate(lambda users: table[users])
        # Reference computation with the per-user metric functions.
        recalls, ndcgs = [], []
        for u in split.test.active_users():
            scores = table[u].copy()
            scores[split.train.items_of_user(int(u))] = -np.inf
            ranked = np.argsort(-scores).tolist()
            relevant = set(split.test.items_of_user(int(u)).tolist())
            recalls.append(recall_at_k(ranked, relevant, 3))
            ndcgs.append(ndcg_at_k(ranked, relevant, 3))
        assert result.recall == pytest.approx(np.mean(recalls))
        assert result.ndcg == pytest.approx(np.mean(ndcgs))

    def test_wrong_shape_rejected(self):
        split = make_split()
        ev = RankingEvaluator(split.train, split.test, k=2)
        with pytest.raises(ValueError):
            ev.evaluate(lambda users: np.zeros((len(users), 3)))

    def test_k_larger_than_items_rejected(self):
        split = make_split()
        ev = RankingEvaluator(split.train, split.test, k=100)
        with pytest.raises(ValueError):
            ev.evaluate(lambda users: np.zeros((len(users), 6)))

    def test_batching_equivalent(self):
        split = make_split()
        rng = np.random.default_rng(1)
        table = rng.normal(size=(3, 6))
        big = RankingEvaluator(split.train, split.test, k=2, user_batch=100)
        tiny = RankingEvaluator(split.train, split.test, k=2, user_batch=1)
        a = big.evaluate(lambda users: table[users])
        b = tiny.evaluate(lambda users: table[users])
        assert a.recall == pytest.approx(b.recall)
        assert a.ndcg == pytest.approx(b.ndcg)

    def test_as_dict_and_str(self):
        split = make_split()
        ev = RankingEvaluator(split.train, split.test, k=2)
        result = ev.evaluate(lambda users: np.zeros((len(users), 6)))
        d = result.as_dict()
        assert "recall@2" in d and "ndcg@2" in d
        assert "recall@2" in str(result)

    def test_invalid_construction(self):
        split = make_split()
        with pytest.raises(ValueError):
            RankingEvaluator(split.train, split.test, k=0)
        other = InteractionDataset(np.array([0]), np.array([0]), 4, 6)
        with pytest.raises(ValueError):
            RankingEvaluator(split.train, other, k=2)
