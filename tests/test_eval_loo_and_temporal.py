"""Tests for the LOO evaluation protocol and temporal session structure."""

import numpy as np
import pytest

from repro.eval.loo import LOOResult, evaluate_loo, leave_one_out_split
from repro.facility.temporal import (
    SessionConfig,
    add_session_structure,
    hour_of_day_profile,
    interarrival_stats,
)


class TestLeaveOneOutSplit:
    def test_one_heldout_per_multi_user(self, ooi_interactions):
        train, (users, items) = leave_one_out_split(ooi_interactions, seed=0)
        deg = ooi_interactions.user_degree()
        assert len(users) == int((deg >= 2).sum())
        assert len(train) + len(users) == len(ooi_interactions)

    def test_heldout_removed_from_train(self, ooi_interactions):
        train, (users, items) = leave_one_out_split(ooi_interactions, seed=0)
        for u, i in zip(users[:20], items[:20]):
            assert i not in train.items_of_user(int(u))

    def test_deterministic(self, ooi_interactions):
        a = leave_one_out_split(ooi_interactions, seed=3)
        b = leave_one_out_split(ooi_interactions, seed=3)
        np.testing.assert_array_equal(a[1][1], b[1][1])


class TestEvaluateLOO:
    def test_oracle_gets_perfect_hr(self, ooi_interactions):
        train, (users, items) = leave_one_out_split(ooi_interactions, seed=0)
        target_of = dict(zip(users.tolist(), items.tolist()))

        def oracle(batch):
            scores = np.zeros((len(batch), train.num_items))
            for row, u in enumerate(batch):
                scores[row, target_of[int(u)]] = 10.0
            return scores

        result = evaluate_loo(oracle, train, users, items, k=10, num_negatives=50, seed=0)
        assert result.hr == pytest.approx(1.0)
        assert result.ndcg == pytest.approx(1.0)

    def test_adversary_gets_zero(self, ooi_interactions):
        train, (users, items) = leave_one_out_split(ooi_interactions, seed=0)
        target_of = dict(zip(users.tolist(), items.tolist()))

        def adversary(batch):
            scores = np.ones((len(batch), train.num_items))
            for row, u in enumerate(batch):
                scores[row, target_of[int(u)]] = -10.0
            return scores

        result = evaluate_loo(adversary, train, users, items, k=10, num_negatives=50, seed=0)
        assert result.hr == 0.0

    def test_random_scores_near_expected(self, ooi_interactions):
        """With random scores, HR@k ≈ k / (negatives + 1)."""
        train, (users, items) = leave_one_out_split(ooi_interactions, seed=0)
        rng = np.random.default_rng(0)
        table = rng.random((train.num_users, train.num_items))
        result = evaluate_loo(
            lambda b: table[b], train, users, items, k=10, num_negatives=99, seed=0
        )
        assert abs(result.hr - 10 / 100) < 0.08

    def test_validation(self, ooi_interactions):
        train, (users, items) = leave_one_out_split(ooi_interactions, seed=0)
        with pytest.raises(ValueError):
            evaluate_loo(lambda b: None, train, users, items, k=0)
        with pytest.raises(ValueError):
            evaluate_loo(lambda b: None, train, users[:2], items[:3])
        with pytest.raises(ValueError):
            evaluate_loo(lambda b: None, train, users[:0], items[:0])

    def test_str(self):
        r = LOOResult(hr=0.5, ndcg=0.3, k=10, num_users=5, num_negatives=99)
        assert "HR@10" in str(r)


class TestSessionStructure:
    def test_preserves_content(self, ooi_trace):
        structured = add_session_structure(ooi_trace, seed=0)
        assert len(structured) == len(ooi_trace)
        # Same multiset of (user, object) records.
        a = sorted(zip(ooi_trace.user_ids.tolist(), ooi_trace.object_ids.tolist()))
        b = sorted(zip(structured.user_ids.tolist(), structured.object_ids.tolist()))
        assert a == b

    def test_timestamps_sorted_and_bounded(self, ooi_trace):
        from repro.facility.trace import SECONDS_PER_YEAR

        structured = add_session_structure(ooi_trace, seed=0)
        assert (np.diff(structured.timestamps) >= 0).all()
        assert structured.timestamps.min() >= 0
        assert structured.timestamps.max() <= SECONDS_PER_YEAR

    def test_burstier_than_uniform(self, ooi_trace):
        uniform = interarrival_stats(ooi_trace)
        structured = add_session_structure(ooi_trace, seed=0)
        bursty = interarrival_stats(structured)
        assert bursty["fraction_within_session"] > 3 * uniform["fraction_within_session"]

    def test_working_hours_peak(self, ooi_trace):
        structured = add_session_structure(ooi_trace, SessionConfig(peak_hour=14.0), seed=0)
        profile = hour_of_day_profile(structured)
        np.testing.assert_allclose(profile.sum(), 1.0, atol=1e-12)
        assert profile[13:16].sum() > profile[1:4].sum() * 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(mean_session_length=0)
        with pytest.raises(ValueError):
            SessionConfig(peak_hour=25)
        with pytest.raises(ValueError):
            SessionConfig(weekend_factor=0.0)

    def test_deterministic(self, ooi_trace):
        a = add_session_structure(ooi_trace, seed=5)
        b = add_session_structure(ooi_trace, seed=5)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)
