"""Tests for repro.utils: rng plumbing, text tables, timer, validation."""

import time

import numpy as np
import pytest

from repro.utils import (
    SeedSequenceFactory,
    TextTable,
    Timer,
    check_in_choices,
    check_positive,
    check_probability,
    ensure_rng,
    format_float,
    spawn_rngs,
)
from repro.utils.validation import check_nonnegative


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(5).random(3)
        b = ensure_rng(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(3)
        a = ensure_rng(ss).random()
        b = ensure_rng(np.random.SeedSequence(3)).random()
        assert a == b


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_differ(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        a1, _ = spawn_rngs(9, 2)
        a2, _ = spawn_rngs(9, 2)
        assert a1.random() == a2.random()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 3)
        assert len(children) == 3


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f = SeedSequenceFactory(42)
        a = f.get("trace").random(3)
        b = SeedSequenceFactory(42).get("trace").random(3)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        f = SeedSequenceFactory(42)
        assert f.get("a").random() != f.get("b").random()

    def test_order_independent(self):
        f1 = SeedSequenceFactory(1)
        _ = f1.get("x")
        y1 = f1.get("y").random()
        f2 = SeedSequenceFactory(1)
        y2 = f2.get("y").random()
        assert y1 == y2

    def test_root_seed_matters(self):
        assert SeedSequenceFactory(1).get("a").random() != SeedSequenceFactory(2).get("a").random()


class TestTextTable:
    def test_render_aligns_columns(self):
        t = TextTable(["model", "recall@20"])
        t.add_row(["CKAT", 0.3217])
        out = t.render()
        assert "CKAT" in out and "0.3217" in out

    def test_title(self):
        t = TextTable(["a"], title="Table X")
        t.add_row([1])
        assert t.render().startswith("Table X")

    def test_none_renders_dash(self):
        t = TextTable(["a"])
        t.add_row([None])
        assert "-" in t.render().splitlines()[-1]

    def test_wrong_arity_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_separator(self):
        t = TextTable(["alpha"])
        t.add_row([1])
        t.add_separator()
        t.add_row([2])
        # Header rule plus the explicit separator.
        assert sum(1 for line in t.render().splitlines() if set(line) <= {"-", "+"}) == 2

    def test_float_digits(self):
        t = TextTable(["a"], float_digits=2)
        t.add_row([0.12345])
        assert "0.12" in t.render()

    def test_format_float(self):
        assert format_float(0.123456) == "0.1235"
        assert format_float(0.1, 2) == "0.10"

    def test_str_equals_render(self):
        t = TextTable(["a"])
        t.add_row([1])
        assert str(t) == t.render()


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t.section("work"):
            time.sleep(0.01)
        with t.section("work"):
            time.sleep(0.01)
        assert t.total("work") >= 0.02
        assert t.count("work") == 2

    def test_unknown_section_zero(self):
        t = Timer()
        assert t.total("nope") == 0.0
        assert t.count("nope") == 0

    def test_names(self):
        t = Timer()
        with t.section("a"):
            pass
        assert t.names() == ["a"]

    def test_summary_mentions_sections(self):
        t = Timer()
        with t.section("phase1"):
            pass
        assert "phase1" in t.summary()


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)

    def test_check_in_choices(self):
        assert check_in_choices("m", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="m"):
            check_in_choices("m", "c", ("a", "b"))
