"""Engine-level reprolint tests: suppressions, JSON schema stability, rule
selection, parse-error handling, and file discovery."""

import json

import pytest

from repro.analysis.lint import (
    SCHEMA_VERSION,
    Finding,
    LintConfig,
    collect_files,
    known_codes,
    lint_source,
    render_json,
    render_text,
    run_lint,
    summarize,
)
from repro.analysis.lint.findings import PARSE_ERROR_CODE
from repro.analysis.lint.registry import all_rules, rules_for

STRICT = LintConfig(exempt_paths=())
MODEL_PATH = "src/repro/models/mod.py"

BAD_LINE = "import numpy as np\nx = np.random.rand(3)\n"


# -------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_matching_code_suppressed(self):
        src = "import numpy as np\nx = np.random.rand(3)  # reprolint: disable=RPL001\n"
        assert lint_source(src, path=MODEL_PATH, config=STRICT) == []

    def test_non_matching_code_kept(self):
        src = "import numpy as np\nx = np.random.rand(3)  # reprolint: disable=RPL005\n"
        assert [f.code for f in lint_source(src, path=MODEL_PATH, config=STRICT)] == ["RPL001"]

    def test_bare_disable_suppresses_everything(self):
        src = "import numpy as np\nx = np.zeros(3), np.random.rand(3)  # reprolint: disable\n"
        assert lint_source(src, path=MODEL_PATH, config=STRICT) == []

    def test_multiple_codes_one_comment(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros(3), np.random.rand(3)  # reprolint: disable=RPL001,RPL004\n"
        )
        assert lint_source(src, path=MODEL_PATH, config=STRICT) == []

    def test_suppression_is_line_scoped(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RPL001\n"
            "y = np.random.rand(3)\n"
        )
        findings = lint_source(src, path=MODEL_PATH, config=STRICT)
        assert [(f.code, f.line) for f in findings] == [("RPL001", 3)]

    def test_marker_inside_string_not_a_suppression(self):
        src = (
            "import numpy as np\n"
            'doc = "# reprolint: disable=RPL001"\n'
            "x = np.random.rand(3)\n"
        )
        assert [f.code for f in lint_source(src, path=MODEL_PATH, config=STRICT)] == ["RPL001"]


# --------------------------------------------------------------- JSON schema
class TestJsonSchema:
    def test_document_shape_is_stable(self):
        findings = lint_source(BAD_LINE, path=MODEL_PATH, config=STRICT)
        doc = json.loads(render_json(findings, files_checked=1))
        assert list(doc) == ["schema_version", "tool", "files_checked", "findings", "summary"]
        assert doc["schema_version"] == SCHEMA_VERSION == 2
        assert doc["tool"] == "reprolint"
        assert doc["files_checked"] == 1
        assert doc["summary"] == {"total": 1, "by_code": {"RPL001": 1}}
        (entry,) = doc["findings"]
        assert list(entry) == ["code", "rule", "path", "line", "col", "end_col", "message"]
        assert entry["end_col"] > entry["col"]
        assert entry["code"] == "RPL001"
        assert entry["path"] == MODEL_PATH
        assert entry["line"] == 2

    def test_clean_document(self):
        doc = json.loads(render_json([], files_checked=4))
        assert doc["findings"] == []
        assert doc["summary"] == {"total": 0, "by_code": {}}

    def test_text_rendering(self):
        findings = lint_source(BAD_LINE, path=MODEL_PATH, config=STRICT)
        text = render_text(findings, files_checked=1)
        assert f"{MODEL_PATH}:2:" in text
        assert "RPL001" in text
        assert render_text([], files_checked=3).startswith("clean: 0 findings")


# ----------------------------------------------------------------- selection
class TestSelection:
    def test_select_restricts_rules(self):
        src = "import numpy as np\ndef f(n):\n    return np.zeros(n), np.random.rand(n)\n"
        config = LintConfig(select=frozenset({"RPL004"}), exempt_paths=())
        assert [f.code for f in lint_source(src, path=MODEL_PATH, config=config)] == ["RPL004"]

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="RPL999"):
            rules_for(frozenset({"RPL999"}))

    def test_known_codes_cover_rule_set(self):
        assert set(known_codes()) >= {f"RPL00{i}" for i in range(1, 8)}

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.code.startswith("RPL")
            assert rule.name
            assert len(rule.description) > 20


# --------------------------------------------------------------- parse error
def test_syntax_error_is_rpl000_finding():
    findings = lint_source("def broken(:\n", path=MODEL_PATH, config=STRICT)
    assert [f.code for f in findings] == [PARSE_ERROR_CODE]
    assert findings[0].rule == "parse-error"
    assert "does not parse" in findings[0].message


# ------------------------------------------------------------ file discovery
class TestCollectFiles:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nope"])

    def test_directories_expanded_and_deduplicated(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        (sub / "notes.txt").write_text("not python\n")
        files = collect_files([tmp_path, tmp_path / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_cache_dirs_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        assert [f.name for f in collect_files([tmp_path])] == ["real.py"]


# -------------------------------------------------------------------- reports
def test_run_lint_aggregates_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("import pickle\n")
    (tmp_path / "a.py").write_text("def f(x=[]):\n    return x\n")
    report = run_lint([tmp_path])
    assert report.files_checked == 2
    assert [f.code for f in report.findings] == ["RPL006", "RPL005"]  # sorted by path
    assert report.exit_code == 1
    assert summarize(report.findings) == {"RPL005": 1, "RPL006": 1}


def test_clean_report_exit_code(tmp_path):
    (tmp_path / "ok.py").write_text("VALUE = 1\n")
    report = run_lint([tmp_path])
    assert report.findings == []
    assert report.exit_code == 0


def test_findings_order_stable():
    a = Finding(path="a.py", line=3, col=0, code="RPL004", message="m", rule="r")
    b = Finding(path="a.py", line=1, col=0, code="RPL001", message="m", rule="r")
    assert sorted([a, b]) == [b, a]


def test_findings_sorted_by_rule_not_by_end_col():
    # end_col is informational: two findings at one location sort by code
    # even when their end columns disagree with that order.
    a = Finding(path="a.py", line=1, col=0, code="RPL004", message="m", rule="r", end_col=2)
    b = Finding(path="a.py", line=1, col=0, code="RPL001", message="m", rule="r", end_col=9)
    assert sorted([a, b]) == [b, a]
