"""Engine-layer tests: serial bit-identity, step funnel, executor fingerprints."""

import numpy as np
import pytest

from repro.autograd import Adam, Parameter
from repro.data.interactions import InteractionDataset
from repro.data.sampling import BPRSampler
from repro.io.checkpoints import (
    check_executor_compatible,
    executor_fingerprint,
    load_training_checkpoint,
)
from repro.models import BPRMF
from repro.models.base import FitConfig
from repro.train import SerialExecutor, ShardedExecutor, TrainEngine, make_step_fn
from repro.utils.rng import ensure_rng


@pytest.fixture()
def tiny_data():
    rng = np.random.default_rng(0)
    n = 600
    return InteractionDataset(
        rng.integers(0, 40, n), rng.integers(0, 60, n), num_users=40, num_items=60
    )


def _historical_fit(model, data, config):
    """The pre-engine ``Recommender.fit`` epoch loop, inlined verbatim.

    This is the bit-identity oracle for :class:`SerialExecutor`: the exact
    statement sequence the training loop ran before the engine extraction
    (single RNG, aux phase first, one optimizer step per sampler batch).
    """
    rng = ensure_rng(config.seed)
    sampler = BPRSampler(data)
    optimizer = Adam(model.parameters(), lr=config.lr)
    losses = []
    for _ in range(config.epochs):
        model.extra_epoch_step(make_step_fn(optimizer), rng, config)
        epoch_loss, n_batches = 0.0, 0
        for users, pos, neg in sampler.epoch_batches(config.batch_size, seed=rng):
            optimizer.zero_grad()
            loss = model.batch_loss(users, pos, neg, rng)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        losses.append(epoch_loss / max(n_batches, 1))
        model.on_epoch_end()
    return losses


class TestSerialBitIdentity:
    def test_engine_matches_historical_loop(self, tiny_data):
        """TrainEngine + SerialExecutor == the pre-refactor epoch loop, bit for bit."""
        cfg = FitConfig(epochs=4, batch_size=64, seed=3)
        via_engine = BPRMF(40, 60, dim=8, seed=1)
        result = TrainEngine(via_engine).fit(tiny_data, cfg)
        oracle = BPRMF(40, 60, dim=8, seed=1)
        oracle_losses = _historical_fit(oracle, tiny_data, cfg)
        assert result.losses == oracle_losses
        for p, q in zip(via_engine.parameters(), oracle.parameters()):
            assert np.array_equal(p.data, q.data)

    def test_fit_wrapper_equals_engine(self, tiny_data):
        cfg = FitConfig(epochs=3, batch_size=64, seed=5)
        a = BPRMF(40, 60, dim=8, seed=2)
        ra = a.fit(tiny_data, cfg)
        b = BPRMF(40, 60, dim=8, seed=2)
        rb = TrainEngine(b, executor=SerialExecutor()).fit(tiny_data, cfg)
        assert ra.losses == rb.losses
        for p, q in zip(a.parameters(), b.parameters()):
            assert np.array_equal(p.data, q.data)

    def test_step_funnel_sequence(self):
        """make_step_fn runs zero_grad → forward → backward → step, in order."""
        calls = []

        class Recorder:
            def zero_grad(self):
                calls.append("zero")

            def step(self):
                calls.append("step")

        p = Parameter(np.zeros((2, 2)), name="w")

        def loss_fn():
            from repro.autograd import functional as F

            return F.sum(F.mul(p, p))

        step = make_step_fn(Recorder())
        value = step(loss_fn)
        assert calls == ["zero", "step"]
        assert value == 0.0
        assert p.grad is not None


class TestExecutorFingerprint:
    def test_serial_checkpoint_records_executor(self, tiny_data, tmp_path):
        cfg = FitConfig(epochs=2, batch_size=64, seed=3)
        m = BPRMF(40, 60, dim=8, seed=1)
        ck = tmp_path / "run.ckpt.npz"
        m.fit(tiny_data, cfg, checkpoint_every=2, checkpoint_path=ck)
        loaded = load_training_checkpoint(ck)
        assert loaded.config["executor"] == {"kind": "serial"}

    def test_missing_executor_key_reads_as_serial(self):
        assert executor_fingerprint({"seed": 0}) == {"kind": "serial"}
        check_executor_compatible({"seed": 0}, {"kind": "serial"})  # no raise

    def test_mismatch_raises(self):
        with pytest.raises(ValueError, match="cannot resume"):
            check_executor_compatible(
                {"executor": {"kind": "serial"}}, {"kind": "sharded", "workers": 2}
            )

    def test_serial_checkpoint_refuses_sharded_resume(self, tiny_data, tmp_path):
        """A serial checkpoint resumed with --workers N fails loudly."""
        cfg = FitConfig(epochs=4, batch_size=64, seed=3)
        m = BPRMF(40, 60, dim=8, seed=1)
        ck = tmp_path / "serial.ckpt.npz"
        m.fit(
            tiny_data,
            FitConfig(epochs=2, batch_size=64, seed=3),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        m2 = BPRMF(40, 60, dim=8, seed=1)
        with pytest.raises(ValueError, match="cannot resume.*executor"):
            m2.fit(
                tiny_data,
                cfg,
                resume_from=ck,
                executor=ShardedExecutor(2, parallel=False),
            )


class TestEngineValidation:
    def test_needs_data_or_sampler(self):
        with pytest.raises(ValueError, match="training dataset or an explicit sampler"):
            TrainEngine(BPRMF(4, 5, dim=2)).fit(None, FitConfig(epochs=1))

    def test_shape_mismatch(self, tiny_data):
        with pytest.raises(ValueError, match="does not match model"):
            BPRMF(41, 60, dim=4).fit(tiny_data, FitConfig(epochs=1))

    def test_worker_epoch_events_merged(self, tiny_data, tmp_path):
        from repro.utils.telemetry import RunLogger, read_run_log

        log = tmp_path / "run.jsonl"
        cfg = FitConfig(epochs=2, batch_size=64, seed=3)
        m = BPRMF(40, 60, dim=8, seed=1)
        with RunLogger(log) as logger:
            m.fit(
                tiny_data,
                cfg,
                logger=logger,
                executor=ShardedExecutor(2, parallel=False),
            )
        events = read_run_log(log)
        worker_events = [e for e in events if e["event"] == "worker_epoch"]
        assert len(worker_events) == 2 * cfg.epochs  # one per worker per epoch
        assert {e["worker"] for e in worker_events} == {0, 1}
