"""Parallel-utilities tests: executors, partitions, sharded propagation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg.triples import TripleStore
from repro.parallel import (
    SerialExecutor,
    partition_edges,
    sharded_propagation_step,
    sharded_segment_sum,
)
from repro.parallel.executor import ProcessExecutor, chunk_indices


def _triple(x):
    """Module-level map function (picklable for process pools)."""
    return x * 3


class _TableScorer:
    """Picklable score_fn over a fixed score table."""

    def __init__(self, table):
        self.table = table

    def __call__(self, users):
        return self.table[users]


def random_store(seed, n_entities=30, n_edges=120):
    rng = np.random.default_rng(seed)
    store = TripleStore(num_entities=n_entities)
    store.add_triples(
        "r", rng.integers(0, n_entities, n_edges), rng.integers(0, n_entities, n_edges)
    )
    return store


class TestChunkIndices:
    def test_covers_range(self):
        chunks = chunk_indices(10, 3)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(10))

    def test_single_chunk_is_whole_range(self):
        assert chunk_indices(7, 1) == [range(0, 7)]

    def test_zero_items_any_chunks(self):
        assert chunk_indices(0, 1) == []
        assert chunk_indices(0, 100) == []

    def test_chunks_far_exceed_items(self):
        chunks = chunk_indices(3, 100)
        assert [list(c) for c in chunks] == [[0], [1], [2]]

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)

    def test_balanced(self):
        sizes = [len(c) for c in chunk_indices(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        chunks = chunk_indices(2, 5)
        assert sum(len(c) for c in chunks) == 2

    def test_zero_items(self):
        assert chunk_indices(0, 3) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestExecutors:
    def test_serial_map(self):
        ex = SerialExecutor()
        assert ex.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_serial_preserves_order(self):
        ex = SerialExecutor()
        assert ex.map(str, range(5)) == ["0", "1", "2", "3", "4"]

    def test_process_executor_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)

    def test_process_executor_round_trip_preserves_order(self):
        items = list(range(40))
        with ProcessExecutor(max_workers=2) as pool:
            out = pool.map(_triple, items)
        assert out == SerialExecutor().map(_triple, items)
        assert out == [3 * i for i in items]

    def test_process_executor_matches_serial_on_eval_shard_merge(self):
        """The eval-shard merge is executor-independent, bit-for-bit."""
        from repro.data import InteractionDataset
        from repro.eval import RankingEvaluator, sharded_evaluate

        rng = np.random.default_rng(0)
        n_users, n_items = 9, 25
        train = InteractionDataset(
            np.repeat(np.arange(n_users), 4),
            rng.integers(0, n_items, 4 * n_users),
            n_users,
            n_items,
        )
        test = InteractionDataset(
            np.repeat(np.arange(n_users), 2),
            rng.integers(0, n_items, 2 * n_users),
            n_users,
            n_items,
        )
        scorer = _TableScorer(rng.normal(size=(n_users, n_items)))
        ev = RankingEvaluator(train, test, k=5)
        reference = sharded_evaluate(ev, scorer, num_shards=3, executor=SerialExecutor())
        with ProcessExecutor(max_workers=2) as pool:
            parallel = sharded_evaluate(ev, scorer, num_shards=3, executor=pool)
        assert parallel == reference
        assert reference == ev.evaluate(scorer)


class TestPartition:
    @pytest.mark.parametrize("strategy", ["contiguous", "hash"])
    def test_every_edge_assigned_once(self, strategy):
        store = random_store(0)
        part = partition_edges(store, num_shards=4, strategy=strategy)
        counts = np.bincount(part.shard_of_edge, minlength=4)
        assert counts.sum() == len(store)

    def test_contiguous_balance(self):
        store = random_store(1)
        part = partition_edges(store, num_shards=4, strategy="contiguous")
        assert part.load_balance() <= 1.1

    def test_hash_keeps_head_on_one_shard(self):
        store = random_store(2)
        part = partition_edges(store, num_shards=3, strategy="hash")
        for shard_a in range(3):
            heads_a = set(store.heads[part.edge_indices(shard_a)].tolist())
            for shard_b in range(shard_a + 1, 3):
                heads_b = set(store.heads[part.edge_indices(shard_b)].tolist())
                assert not (heads_a & heads_b)

    def test_replication_factor_at_least_one(self):
        store = random_store(3)
        part = partition_edges(store, num_shards=4)
        rf = part.replication_factor(store.heads, store.tails)
        assert rf >= 1.0

    def test_single_shard_replication_is_one(self):
        store = random_store(4)
        part = partition_edges(store, num_shards=1)
        assert part.replication_factor(store.heads, store.tails) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        store = random_store(5)
        with pytest.raises(ValueError):
            partition_edges(store, num_shards=0)
        with pytest.raises(ValueError):
            partition_edges(store, num_shards=2, strategy="round-robin")
        part = partition_edges(store, num_shards=2)
        with pytest.raises(ValueError):
            part.edge_indices(5)


class TestShardedPropagation:
    def _monolithic(self, heads, tails, weights, emb):
        out = np.zeros_like(emb)
        np.add.at(out, heads, weights[:, None] * emb[tails])
        return out

    @pytest.mark.parametrize("strategy", ["contiguous", "hash"])
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_sharded_equals_monolithic(self, strategy, num_shards):
        store = random_store(6)
        rng = np.random.default_rng(7)
        weights = rng.random(len(store))
        emb = rng.normal(size=(store.num_entities, 8))
        part = partition_edges(store, num_shards=num_shards, strategy=strategy)
        sharded = sharded_segment_sum(store.heads, store.tails, weights, emb, part)
        mono = self._monolithic(store.heads, store.tails, weights, emb)
        np.testing.assert_allclose(sharded, mono, atol=1e-10)

    def test_propagation_step_applies_aggregate(self):
        store = random_store(8)
        rng = np.random.default_rng(9)
        weights = rng.random(len(store))
        emb = rng.normal(size=(store.num_entities, 4))
        part = partition_edges(store, num_shards=3)
        out = sharded_propagation_step(
            store.heads, store.tails, weights, emb, part, aggregate=lambda s, n: s + n
        )
        mono = emb + self._monolithic(store.heads, store.tails, weights, emb)
        np.testing.assert_allclose(out, mono, atol=1e-10)

    def test_mismatched_lengths_rejected(self):
        store = random_store(10)
        part = partition_edges(store, num_shards=2)
        with pytest.raises(ValueError):
            sharded_segment_sum(
                store.heads, store.tails, np.ones(3), np.zeros((store.num_entities, 2)), part
            )

    def test_matches_ckat_layer_neighborhood(self, ooi_ckg_best):
        """Sharded sum reproduces CKAT's frozen-attention neighborhood sum."""
        from repro.kg.adjacency import CSRAdjacency
        from repro.models.ckat.layers import build_weighted_adjacency, uniform_edge_weights

        adj = CSRAdjacency(ooi_ckg_best.propagation_store)
        weights = uniform_edge_weights(adj)
        emb = np.random.default_rng(0).normal(size=(adj.num_entities, 4))
        A = build_weighted_adjacency(adj, weights)
        store = ooi_ckg_best.propagation_store
        part = partition_edges(store, num_shards=4, strategy="hash")
        # Careful: sharded sum works in the store's edge order; build weights
        # in that order (uniform weights depend only on head degree).
        degrees = np.bincount(store.heads, minlength=store.num_entities)
        w_store = 1.0 / degrees[store.heads]
        sharded = sharded_segment_sum(store.heads, store.tails, w_store, emb, part)
        np.testing.assert_allclose(sharded, A @ emb, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), shards=st.integers(1, 6))
def test_sharded_sum_property(seed, shards):
    """Property: sharding is exact for any random graph and shard count."""
    store = random_store(seed, n_entities=15, n_edges=40)
    rng = np.random.default_rng(seed + 1)
    weights = rng.random(len(store))
    emb = rng.normal(size=(15, 3))
    part = partition_edges(store, num_shards=shards, strategy="hash")
    sharded = sharded_segment_sum(store.heads, store.tails, weights, emb, part)
    mono = np.zeros_like(emb)
    np.add.at(mono, store.heads, weights[:, None] * emb[store.tails])
    np.testing.assert_allclose(sharded, mono, atol=1e-10)
