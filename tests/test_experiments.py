"""Experiment-harness tests on miniature datasets (fast smoke level)."""

import numpy as np
import pytest

from repro.experiments import figures, load_dataset, run_single_model, tables
from repro.experiments.datasets import DATASET_NAMES
from repro.experiments.runner import MODEL_NAMES, build_model, default_fit_config
from repro.kg.subgraphs import KnowledgeSources


@pytest.fixture(scope="module")
def small_ooi():
    return load_dataset("ooi", scale="small", seed=3)


@pytest.fixture(scope="module")
def small_gage():
    return load_dataset("gage", scale="small", seed=3)


class TestLoadDataset:
    def test_names(self):
        assert set(DATASET_NAMES) == {"ooi", "gage"}

    def test_small_ooi_structure(self, small_ooi):
        assert small_ooi.catalog.num_regions == 8
        assert small_ooi.split.train.num_users == small_ooi.population.num_users
        small_ooi.split.assert_disjoint()

    def test_small_gage_structure(self, small_gage):
        assert small_gage.catalog.num_regions == 48
        assert len(small_gage.split.test) > 0

    def test_deterministic(self):
        a = load_dataset("ooi", scale="small", seed=5)
        b = load_dataset("ooi", scale="small", seed=5)
        np.testing.assert_array_equal(a.trace.object_ids, b.trace.object_ids)
        np.testing.assert_array_equal(a.split.train.item_ids, b.split.train.item_ids)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            load_dataset("hubble")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("ooi", scale="xl")

    def test_build_ckg_sources(self, small_ooi):
        bare = small_ooi.build_ckg(KnowledgeSources(uug=False, loc=False, dkg=False, md=False))
        full = small_ooi.build_ckg(KnowledgeSources.all_sources())
        assert len(full.store) > len(bare.store)

    def test_describe(self, small_ooi):
        assert "train" in small_ooi.describe()


class TestRunner:
    def test_model_names_match_paper(self):
        assert MODEL_NAMES == ("BPRMF", "FM", "NFM", "CKE", "CFKG", "RippleNet", "KGCN", "CKAT")

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_build_every_model(self, small_ooi, name):
        ckg = small_ooi.build_ckg()
        model = build_model(name, small_ooi, ckg, seed=0)
        assert model.num_items == small_ooi.split.train.num_items

    def test_build_unknown_model(self, small_ooi):
        with pytest.raises(ValueError):
            build_model("SVD++", small_ooi, small_ooi.build_ckg())

    def test_default_fit_config(self):
        cfg = default_fit_config("CKAT")
        assert cfg.epochs > 0 and cfg.lr > 0
        assert default_fit_config("BPRMF", epochs=7).epochs == 7

    def test_run_single_model_smoke(self, small_ooi):
        result = run_single_model(
            "BPRMF", small_ooi, epochs=3, seed=0, best_epoch_selection=False
        )
        assert 0.0 <= result.recall <= 1.0
        assert 0.0 <= result.ndcg <= 1.0
        assert result.dataset == "ooi"

    def test_run_single_model_ckat_smoke(self, small_ooi):
        from repro.models import CKATConfig

        result = run_single_model(
            "CKAT",
            small_ooi,
            epochs=2,
            seed=0,
            ckat_config=CKATConfig(dim=8, relation_dim=8, layer_dims=(8,), kg_steps_per_epoch=2),
            best_epoch_selection=False,
        )
        assert np.isfinite(result.recall)

    def test_best_epoch_selection_smoke(self, small_ooi):
        # eval_every=10 with 10 epochs → one checkpoint, restored at end.
        result = run_single_model("BPRMF", small_ooi, epochs=10, seed=0)
        assert np.isfinite(result.recall)


class TestTableHarnesses:
    def test_table1(self, small_ooi, small_gage):
        stats, text = tables.table1(small_ooi, small_gage)
        assert stats["ooi"].relationships == 8
        assert stats["gage"].relationships == 7
        assert "Table I" in text

    def test_table2_subset(self, small_ooi):
        results, text = tables.table2(
            datasets=[small_ooi], models=("BPRMF", "CKAT"), epochs=2, seed=0
        )
        assert ("BPRMF", "ooi") in results
        assert "Table II" in text
        assert "% improvement" in text

    def test_table3_structure(self):
        assert len(tables.TABLE3_COMBINATIONS) == 6
        labels = [l for l, _ in tables.TABLE3_COMBINATIONS]
        assert labels[-1] == "UIG+UUG+LOC+DKG+MD"
        assert set(tables.PAPER_TABLE3) == set(labels)

    def test_paper_constants_complete(self):
        assert set(tables.PAPER_TABLE2) == set(MODEL_NAMES)
        for model, per_ds in tables.PAPER_TABLE2.items():
            assert set(per_ds) == {"ooi", "gage"}

    def test_paper_table2_ckat_wins(self):
        for ds in ("ooi", "gage"):
            ckat = tables.PAPER_TABLE2["CKAT"][ds]
            for model in MODEL_NAMES[:-1]:
                assert ckat[0] > tables.PAPER_TABLE2[model][ds][0]


class TestFigureHarnesses:
    def test_figure3(self, small_ooi):
        dists, text = figures.figure3([small_ooi])
        assert "ooi" in dists
        assert "Figure 3" in text

    def test_figure5(self, small_ooi):
        results, text = figures.figure5([small_ooi], num_pairs=500, seed=0)
        assert results["ooi"].num_pairs == 500
        assert "Figure 5" in text
        assert "concentration" in text

    def test_figure4(self, small_ooi):
        embeddings, text = figures.figure4(small_ooi, num_heavy_users=4, seed=0)
        assert "same_org" in embeddings and "cross_org" in embeddings
        assert "separability" in text

    def test_ascii_curve(self):
        out = figures.ascii_curve(np.array([100.0, 50.0, 10.0, 1.0]), width=10, height=4)
        assert len(out.splitlines()) == 5

    def test_ascii_curve_empty(self):
        assert figures.ascii_curve(np.array([])) == "(empty)"


@pytest.mark.slow
class TestTable4And5Harnesses:
    def test_table4_small(self, small_ooi):
        results, text = tables.table4(datasets=[small_ooi], epochs=2, seed=0)
        assert ("w/ Att + concat", "ooi") in results
        assert ("w/o Att + concat", "ooi") in results
        assert "Table IV" in text

    def test_table5_small(self, small_ooi):
        results, text = tables.table5(datasets=[small_ooi], epochs=2, seed=0)
        assert {label for label, _ in results} == {"CKAT-1", "CKAT-2", "CKAT-3"}
        assert "Table V" in text

    def test_table3_small_single_combo_consistency(self, small_ooi):
        results, text = tables.table3(datasets=[small_ooi], epochs=2, seed=0)
        assert len(results) == len(tables.TABLE3_COMBINATIONS)
        assert "Table III" in text
