"""Staged dataset pipeline: Merkle keys, caching, counters, bit-identity.

The load-bearing invariants:

- warm runs regenerate **nothing** (zero ``built`` across stages) and never
  even load the trace — the Merkle key chain lets split/ckg/graph resolve
  their keys without materializing any parent;
- cache-rehydrated stages are bit-identical to freshly built ones;
- ``DatasetRef`` is the picklable cross-process handle and resolves to one
  shared pipeline per process.
"""

import pickle

import numpy as np
import pytest

from repro.kg.subgraphs import KnowledgeSources
from repro.pipeline import (
    PIPELINE_STAGES,
    DatasetPipeline,
    DatasetRef,
    global_stage_counters,
    reset_global_stage_counters,
)
from repro.pipeline.stages import pipeline_for_ref

SOURCES = KnowledgeSources.best()


def _pipe(cache_dir=None, **kw):
    kw.setdefault("scale", "small")
    kw.setdefault("seed", 7)
    return DatasetPipeline("ooi", cache_dir=cache_dir, **kw)


# ------------------------------------------------------------------ stage keys
class TestStageKeys:
    def test_keys_stable_across_instances(self):
        a, b = _pipe(), _pipe()
        for stage in PIPELINE_STAGES:
            assert a.stage_key(stage, SOURCES) == b.stage_key(stage, SOURCES)

    def test_seed_rekeys_every_stage(self):
        a, b = _pipe(seed=7), _pipe(seed=8)
        for stage in PIPELINE_STAGES:
            assert a.stage_key(stage, SOURCES) != b.stage_key(stage, SOURCES)

    def test_sources_rekey_only_ckg_suffix(self):
        a = _pipe()
        uug_only = KnowledgeSources(uug=True, loc=False, dkg=False, md=False)
        assert a.stage_key("trace") == a.stage_key("trace", uug_only)
        assert a.stage_key("split") == a.stage_key("split", uug_only)
        assert a.stage_key("ckg", SOURCES) != a.stage_key("ckg", uug_only)
        assert a.stage_key("graph", SOURCES) != a.stage_key("graph", uug_only)

    def test_ckg_stage_needs_sources(self):
        with pytest.raises(ValueError, match="requires a KnowledgeSources"):
            _pipe().stage_key("ckg")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            _pipe().stage_key("frobnicate", SOURCES)


# -------------------------------------------------------------------- caching
class TestCaching:
    def test_cold_builds_then_memoizes(self, tmp_path):
        pipe = _pipe(cache_dir=tmp_path)
        pipe.graph(SOURCES)
        counts = pipe.stage_counters()
        assert all(counts[s]["built"] == 1 for s in PIPELINE_STAGES)
        pipe.graph(SOURCES)
        assert pipe.stage_counters()["graph"]["memo"] == 1

    def test_warm_run_regenerates_nothing(self, tmp_path):
        _pipe(cache_dir=tmp_path).graph(SOURCES)
        warm = _pipe(cache_dir=tmp_path)
        warm.graph(SOURCES)
        warm.split()
        counts = warm.stage_counters()
        assert all(counts[s]["built"] == 0 for s in PIPELINE_STAGES)
        # the Merkle chain resolves keys without touching parents: the warm
        # path loads graph+split directly and never materializes the trace
        assert counts["trace"] == {"built": 0, "loaded": 0, "memo": 0}
        assert counts["graph"]["loaded"] == 1
        assert counts["split"]["loaded"] == 1
        assert warm.store.stats()["misses"] == 0

    def test_cached_stages_bit_identical_to_fresh(self, tmp_path):
        fresh = _pipe()  # no cache: everything derives in-process
        cold = _pipe(cache_dir=tmp_path)
        cold.graph(SOURCES)
        warm = _pipe(cache_dir=tmp_path)

        f_split, w_split = fresh.split(), warm.split()
        for attr in ("user_ids", "item_ids"):
            np.testing.assert_array_equal(
                getattr(f_split.train, attr), np.asarray(getattr(w_split.train, attr))
            )
            np.testing.assert_array_equal(
                getattr(f_split.test, attr), np.asarray(getattr(w_split.test, attr))
            )

        f_ckg, w_ckg = fresh.ckg(SOURCES), warm.ckg(SOURCES)
        np.testing.assert_array_equal(f_ckg.store.heads, w_ckg.store.heads)
        np.testing.assert_array_equal(f_ckg.store.rels, w_ckg.store.rels)
        np.testing.assert_array_equal(f_ckg.store.tails, w_ckg.store.tails)
        assert list(f_ckg.store.relations.names) == list(w_ckg.store.relations.names)

        f_arrays, f_meta = fresh.graph(SOURCES).to_arrays()
        w_arrays, w_meta = warm.graph(SOURCES).to_arrays()
        assert f_meta == w_meta
        assert sorted(f_arrays) == sorted(w_arrays)
        for name in f_arrays:
            np.testing.assert_array_equal(f_arrays[name], np.asarray(w_arrays[name]))

    def test_interactions_reassembled_from_split(self, tmp_path):
        fresh, warm_src = _pipe(), _pipe(cache_dir=tmp_path)
        warm_src.split()
        warm = _pipe(cache_dir=tmp_path)
        np.testing.assert_array_equal(
            fresh.interactions().user_ids, warm.interactions().user_ids
        )
        np.testing.assert_array_equal(
            fresh.interactions().item_ids, warm.interactions().item_ids
        )

    def test_no_cache_pipeline_still_works(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        pipe = _pipe()
        assert pipe.store is None
        pipe.split()
        assert pipe.stage_counters()["split"]["built"] == 1

    def test_env_cache_dir_honored(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        pipe = _pipe()
        assert pipe.store is not None and pipe.store.root == tmp_path


# ----------------------------------------------------------- refs and pickling
class TestRefs:
    def test_ref_round_trips_through_pickle(self, tmp_path):
        ref = _pipe(cache_dir=tmp_path).ref()
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        assert clone.cache_dir == str(tmp_path)

    def test_pipeline_for_ref_shared_per_process(self):
        ref = DatasetRef("ooi", scale="small", seed=7)
        assert pipeline_for_ref(ref) is pipeline_for_ref(ref)

    def test_distinct_refs_distinct_pipelines(self):
        a = pipeline_for_ref(DatasetRef("ooi", scale="small", seed=7))
        b = pipeline_for_ref(DatasetRef("ooi", scale="small", seed=8))
        assert a is not b

    def test_pipeline_pickle_drops_memo(self, tmp_path):
        pipe = _pipe(cache_dir=tmp_path)
        pipe.split()
        clone = pickle.loads(pickle.dumps(pipe))
        assert clone._memo == {}
        assert clone.name == pipe.name and clone.seed == pipe.seed
        # and the clone still resolves the same keys
        assert clone.stage_key("split") == pipe.stage_key("split")

    def test_invalid_recipe_rejected(self):
        with pytest.raises(ValueError):
            DatasetPipeline("nope")
        with pytest.raises(ValueError):
            DatasetPipeline("ooi", scale="enormous")


# -------------------------------------------------------------- global counters
class TestGlobalCounters:
    def test_aggregates_across_pipelines(self):
        reset_global_stage_counters()
        _pipe().split()
        _pipe().split()
        counts = global_stage_counters()
        assert counts["trace"]["built"] == 2
        assert counts["split"]["built"] == 2
        reset_global_stage_counters()
        assert global_stage_counters()["split"]["built"] == 0
