"""Additional CKG statistics tests across knowledge-source variants."""

import pytest

from repro.kg import KnowledgeSources, build_ckg, compute_stats


@pytest.fixture(scope="module")
def ckg_variants(ooi_catalog, ooi_population, ooi_split):
    def build(sources):
        return build_ckg(
            ooi_catalog,
            ooi_population,
            ooi_split.train.user_ids,
            ooi_split.train.item_ids,
            sources=sources,
            seed=1,
        )

    return {
        "uig": build(KnowledgeSources(uug=False, loc=False, dkg=False, md=False)),
        "loc": build(KnowledgeSources(uug=False, loc=True, dkg=False, md=False)),
        "best": build(KnowledgeSources.best()),
        "all": build(KnowledgeSources.all_sources()),
    }


class TestStatsAcrossVariants:
    def test_kg_triples_grow_with_sources(self, ckg_variants):
        s = {k: compute_stats(v) for k, v in ckg_variants.items()}
        assert s["uig"].kg_triples == 0
        assert s["loc"].kg_triples > 0
        assert s["best"].kg_triples > s["loc"].kg_triples
        assert s["all"].kg_triples > s["best"].kg_triples

    def test_interactions_constant_across_sources(self, ckg_variants):
        uig = compute_stats(ckg_variants["uig"]).interaction_triples
        # UIG-only has no UUG links; variants with UUG add user-user
        # interactions on top of the same user-item count.
        best = compute_stats(ckg_variants["best"]).interaction_triples
        assert best >= uig

    def test_entity_space_constant(self, ckg_variants):
        sizes = {compute_stats(v).entities for v in ckg_variants.values()}
        assert len(sizes) == 1  # stable id space across source combinations

    def test_link_avg_increases_with_knowledge(self, ckg_variants):
        s_loc = compute_stats(ckg_variants["loc"])
        s_all = compute_stats(ckg_variants["all"])
        assert s_all.link_avg > s_loc.link_avg

    def test_md_relations_only_in_all(self, ckg_variants):
        best = compute_stats(ckg_variants["best"]).per_relation
        full = compute_stats(ckg_variants["all"]).per_relation
        assert "inGroup" not in best or best.get("inGroup", 0) == 0
        assert full.get("inGroup", 0) > 0


class TestUUGContribution:
    def test_uug_adds_user_user_edges(self, ooi_catalog, ooi_population, ooi_split):
        no_uug = build_ckg(
            ooi_catalog,
            ooi_population,
            ooi_split.train.user_ids,
            ooi_split.train.item_ids,
            sources=KnowledgeSources(uug=False, loc=False, dkg=False, md=False),
            seed=1,
        )
        with_uug = build_ckg(
            ooi_catalog,
            ooi_population,
            ooi_split.train.user_ids,
            ooi_split.train.item_ids,
            sources=KnowledgeSources(uug=True, loc=False, dkg=False, md=False),
            seed=1,
        )
        delta = len(with_uug.store) - len(no_uug.store)
        assert delta > 0
        # The extra edges connect users to users.
        user_off, user_size = with_uug.space.block("user")
        heads, tails = with_uug.store.triples_of_relation("interact")
        uu = ((heads < user_off + user_size) & (tails < user_off + user_size)).sum()
        assert uu == delta
