"""Affinity-model tests: distributions, mixtures, concentration effects."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facility.affinity import GAGE_AFFINITY, OOI_AFFINITY, AffinityModel


class TestValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            AffinityModel(p_region=1.5, p_dtype=0.5)
        with pytest.raises(ValueError):
            AffinityModel(p_region=0.5, p_dtype=-0.1)

    def test_popularity_exponent_nonnegative(self):
        with pytest.raises(ValueError):
            AffinityModel(0.5, 0.5, popularity_exponent=-1.0)

    def test_site_concentration_at_least_one(self):
        with pytest.raises(ValueError):
            AffinityModel(0.5, 0.5, site_concentration=0.5)

    def test_frozen(self):
        a = AffinityModel(0.5, 0.5)
        with pytest.raises(Exception):
            a.p_region = 0.9


class TestPopularityWeights:
    def test_positive(self):
        w = AffinityModel(0.5, 0.5).popularity_weights(100, np.random.default_rng(0))
        assert (w > 0).all()

    def test_zipf_shape(self):
        w = AffinityModel(0.5, 0.5, popularity_exponent=1.0).popularity_weights(
            1000, np.random.default_rng(0)
        )
        sorted_w = np.sort(w)[::-1]
        # Heavy tail: top weight much larger than median.
        assert sorted_w[0] > 10 * np.median(sorted_w)

    def test_uniform_when_exponent_zero(self):
        w = AffinityModel(0.5, 0.5, popularity_exponent=0.0).popularity_weights(
            50, np.random.default_rng(0)
        )
        np.testing.assert_allclose(w, w[0])

    def test_deterministic_given_seed(self):
        a = AffinityModel(0.5, 0.5).popularity_weights(64, np.random.default_rng(7))
        b = AffinityModel(0.5, 0.5).popularity_weights(64, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_seed_controls_permutation(self):
        a = AffinityModel(0.5, 0.5).popularity_weights(64, np.random.default_rng(7))
        b = AffinityModel(0.5, 0.5).popularity_weights(64, np.random.default_rng(8))
        assert not np.array_equal(a, b)

    def test_permutation_decorrelates_rank_from_id(self):
        w = AffinityModel(0.5, 0.5).popularity_weights(500, np.random.default_rng(0))
        # Top-10 objects should not all be the first ids.
        top = np.argsort(-w)[:10]
        assert top.max() > 20


class TestMixtureDistribution:
    def test_sums_to_one(self, ooi_catalog):
        m = OOI_AFFINITY.mixture_distribution(ooi_catalog, 0, 0, rng=np.random.default_rng(0))
        np.testing.assert_allclose(m.sum(), 1.0, atol=1e-12)

    def test_nonnegative(self, ooi_catalog):
        m = OOI_AFFINITY.mixture_distribution(ooi_catalog, 2, 3, rng=np.random.default_rng(0))
        assert (m >= 0).all()

    def test_region_gate_raises_region_mass(self, ooi_catalog):
        strong = AffinityModel(0.9, 0.0)
        weak = AffinityModel(0.0, 0.0)
        region = int(ooi_catalog.object_region[0])
        mask = ooi_catalog.object_region == region
        m_strong = strong.mixture_distribution(ooi_catalog, region, 0, rng=np.random.default_rng(0))
        m_weak = weak.mixture_distribution(ooi_catalog, region, 0, rng=np.random.default_rng(0))
        assert m_strong[mask].sum() > m_weak[mask].sum()

    def test_dtype_gate_raises_dtype_mass(self, ooi_catalog):
        strong = AffinityModel(0.0, 0.9)
        weak = AffinityModel(0.0, 0.0)
        dtype = int(ooi_catalog.object_dtype[0])
        mask = ooi_catalog.object_dtype == dtype
        assert (
            strong.mixture_distribution(ooi_catalog, 0, dtype, rng=np.random.default_rng(0))[mask].sum()
            > weak.mixture_distribution(ooi_catalog, 0, dtype, rng=np.random.default_rng(0))[mask].sum()
        )

    def test_focus_site_concentrates(self, ooi_catalog):
        site = int(ooi_catalog.object_site[0])
        region = int(ooi_catalog.site_region[site])
        conc = AffinityModel(0.8, 0.0, site_concentration=50.0)
        flat = AffinityModel(0.8, 0.0, site_concentration=1.0)
        mask = ooi_catalog.object_site == site
        m_conc = conc.mixture_distribution(ooi_catalog, region, 0, focus_site=site, rng=np.random.default_rng(0))
        m_flat = flat.mixture_distribution(ooi_catalog, region, 0, focus_site=site, rng=np.random.default_rng(0))
        assert m_conc[mask].sum() > m_flat[mask].sum()

    def test_mixture_matches_monte_carlo(self, ooi_catalog):
        """The closed-form mixture equals the expectation of gated draws."""
        aff = AffinityModel(0.6, 0.4, site_concentration=1.0)
        region, dtype = 1, 2
        pop = aff.popularity_weights(ooi_catalog.num_objects, np.random.default_rng(0))
        analytic = aff.mixture_distribution(ooi_catalog, region, dtype, base_popularity=pop)
        rng = np.random.default_rng(0)
        acc = np.zeros(ooi_catalog.num_objects)
        trials = 3000
        for _ in range(trials):
            acc += aff.item_distribution(ooi_catalog, region, dtype, rng, base_popularity=pop)
        mc = acc / trials
        np.testing.assert_allclose(mc, analytic, atol=4e-3)


class TestUserMixtures:
    def test_shape(self, ooi_catalog, ooi_population):
        m = OOI_AFFINITY.user_mixtures(ooi_catalog, ooi_population, np.random.default_rng(0))
        assert m.shape == (ooi_population.num_users, ooi_catalog.num_objects)

    def test_rows_sum_to_one(self, ooi_catalog, ooi_population):
        m = OOI_AFFINITY.user_mixtures(ooi_catalog, ooi_population, np.random.default_rng(0))
        np.testing.assert_allclose(m.sum(axis=1), np.ones(ooi_population.num_users), atol=1e-9)

    def test_shared_focus_shares_rows(self, ooi_catalog, ooi_population):
        m = OOI_AFFINITY.user_mixtures(ooi_catalog, ooi_population, np.random.default_rng(0))
        keys = (
            ooi_population.user_focus_site * ooi_catalog.num_data_types
            + ooi_population.user_focus_dtype
        )
        u0 = np.flatnonzero(keys == keys[0])
        if len(u0) >= 2:
            np.testing.assert_array_equal(m[u0[0]], m[u0[1]])


class TestItemDistribution:
    def test_empty_catalog_rejected(self, ooi_catalog):
        aff = AffinityModel(0.5, 0.5)

        class Empty:
            num_objects = 0

        with pytest.raises(ValueError):
            aff.item_distribution(Empty(), 0, 0, np.random.default_rng(0))

    def test_valid_distribution(self, ooi_catalog, rng):
        d = OOI_AFFINITY.item_distribution(ooi_catalog, 0, 0, rng)
        np.testing.assert_allclose(d.sum(), 1.0, atol=1e-12)
        assert (d >= 0).all()


@settings(max_examples=20, deadline=None)
@given(pr=st.floats(0, 1), pd=st.floats(0, 1))
def test_presets_and_arbitrary_params_valid(pr, pd):
    """Property: any probability pair builds a valid model."""
    AffinityModel(p_region=pr, p_dtype=pd)


def test_presets_exist():
    assert 0 < OOI_AFFINITY.p_region < 1
    assert 0 < GAGE_AFFINITY.p_dtype < 1
    assert GAGE_AFFINITY.p_dtype > OOI_AFFINITY.p_dtype  # paper: GAGE more dtype-bound
    assert OOI_AFFINITY.p_region > GAGE_AFFINITY.p_region  # OOI more region-bound
