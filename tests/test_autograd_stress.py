"""Autograd stress and composition tests: deeper graphs, mixed ops,
hypothesis-driven randomized gradient checks of composed expressions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Adam, Parameter, Tensor, functional as F, no_grad


def numgrad_scalar(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
    return g


class TestComposedGradients:
    def test_mlp_composition(self):
        rng = np.random.default_rng(0)
        W1 = Parameter(rng.normal(size=(4, 5)) * 0.3)
        b1 = Parameter(np.zeros(5))
        W2 = Parameter(rng.normal(size=(5, 2)) * 0.3)
        x = Tensor(rng.normal(size=(7, 4)))
        target = Tensor(rng.normal(size=(7, 2)))

        def loss_fn():
            h = F.tanh(F.add(x @ W1, b1))
            out = h @ W2
            diff = F.sub(out, target)
            return F.mean(F.mul(diff, diff))

        loss = loss_fn()
        loss.backward()
        for p in (W1, b1, W2):
            ng = numgrad_scalar(lambda: loss_fn().item(), p.data)
            np.testing.assert_allclose(p.grad, ng, atol=1e-5)
            p.grad = None

    def test_attention_like_composition(self):
        """segment_softmax ∘ gather ∘ matmul — the CKAT attention pattern."""
        rng = np.random.default_rng(1)
        emb = Parameter(rng.normal(size=(6, 3)))
        W = Parameter(rng.normal(size=(3, 3)) * 0.5)
        heads = np.array([0, 0, 1, 2, 2, 2])
        tails = np.array([3, 4, 5, 0, 1, 2])
        offsets = np.array([0, 2, 3, 6, 6, 6, 6])
        weights_const = Tensor(rng.normal(size=(6, 3)))

        def loss_fn():
            h = F.take_rows(emb, heads) @ W
            t = F.take_rows(emb, tails) @ W
            scores = F.sum(F.mul(h, F.tanh(t)), axis=1)
            att = F.segment_softmax(scores, offsets)
            msgs = F.mul(F.take_rows(emb, tails), F.reshape(att, (6, 1)))
            agg = F.segment_sum(msgs, offsets)
            return F.sum(F.mul(agg, F.take_rows(weights_const, np.arange(6))))

        loss = loss_fn()
        loss.backward()
        for p in (emb, W):
            ng = numgrad_scalar(lambda: loss_fn().item(), p.data)
            np.testing.assert_allclose(p.grad, ng, atol=1e-5, rtol=1e-4)
            p.grad = None

    def test_bpr_pipeline_gradients(self):
        """embedding → inner products → bpr loss + reg, the standard recipe."""
        rng = np.random.default_rng(2)
        U = Parameter(rng.normal(size=(5, 4)) * 0.4)
        V = Parameter(rng.normal(size=(8, 4)) * 0.4)
        users = np.array([0, 1, 2])
        pos = np.array([1, 2, 3])
        neg = np.array([4, 5, 6])

        def loss_fn():
            u = F.take_rows(U, users)
            i = F.take_rows(V, pos)
            j = F.take_rows(V, neg)
            loss = F.bpr_loss(F.sum(F.mul(u, i), axis=1), F.sum(F.mul(u, j), axis=1))
            reg = F.mul(F.add(F.squared_norm(u), F.squared_norm(i)), F.astensor(0.01))
            return F.add(loss, reg)

        loss_fn().backward()
        for p in (U, V):
            ng = numgrad_scalar(lambda: loss_fn().item(), p.data)
            np.testing.assert_allclose(p.grad, ng, atol=1e-5)
            p.grad = None


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), depth=st.integers(1, 6))
def test_random_chain_gradcheck(seed, depth):
    """Property: random chains of smooth unary ops pass gradcheck."""
    rng = np.random.default_rng(seed)
    ops = [F.tanh, F.sigmoid, F.softplus, lambda t: F.mul(t, F.astensor(0.7))]
    choices = rng.integers(0, len(ops), size=depth)
    x = Parameter(rng.normal(size=(4,)) * 0.8)

    def loss_fn():
        t = x
        for c in choices:
            t = ops[c](t)
        return F.sum(t)

    loss_fn().backward()
    ng = numgrad_scalar(lambda: loss_fn().item(), x.data)
    np.testing.assert_allclose(x.grad, ng, atol=1e-5)


class TestTrainingDynamics:
    def test_logistic_regression_converges(self):
        """End-to-end: the engine can fit a separable classification task."""
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 5))
        true_w = rng.normal(size=5)
        y = (X @ true_w > 0).astype(np.float64)
        w = Parameter(np.zeros(5))
        b = Parameter(np.zeros(1))
        opt = Adam([w, b], lr=0.1)
        Xt, yt = Tensor(X), Tensor(y)
        for _ in range(150):
            opt.zero_grad()
            logits = F.add(Xt @ w, b)
            # BCE via softplus: mean(softplus(logits) − y·logits)
            loss = F.mean(F.sub(F.softplus(logits), F.mul(yt, logits)))
            loss.backward()
            opt.step()
        preds = (X @ w.data + b.data > 0).astype(np.float64)
        assert (preds == y).mean() > 0.95

    def test_no_grad_scoring_leaves_no_tape(self):
        p = Parameter(np.ones((10, 4)))
        with no_grad():
            out = F.l2_normalize(F.tanh(p @ F.transpose(p)), axis=1)
        assert not out.requires_grad
        assert out._parents == ()

    def test_large_embedding_scatter(self):
        """Scatter-add gradient correctness at larger scale (spot check)."""
        rng = np.random.default_rng(4)
        W = Parameter(rng.normal(size=(500, 16)))
        idx = rng.integers(0, 500, size=2000)
        out = F.take_rows(W, idx)
        F.sum(F.mul(out, out)).backward()
        # Row gradient equals 2·count·row (since d/dw Σ w² per gather = 2w each).
        counts = np.bincount(idx, minlength=500)
        np.testing.assert_allclose(W.grad, 2.0 * counts[:, None] * W.data, rtol=1e-10)
