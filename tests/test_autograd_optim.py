"""Optimizer tests: convergence, state, validation."""

import numpy as np
import pytest

from repro.autograd import Adam, AdaGrad, Parameter, SGD, functional as F
from repro.autograd.optim import clip_grad_norm


def quadratic_step(opt, p, target):
    opt.zero_grad()
    diff = F.sub(p, F.astensor(target))
    loss = F.sum(F.mul(diff, diff))
    loss.backward()
    opt.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, p, np.array([1.0, 2.0]))
        np.testing.assert_allclose(p.data, [1.0, 2.0], atol=1e-4)

    def test_momentum_faster_than_plain(self):
        losses = {}
        for mom in (0.0, 0.9):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=mom)
            for _ in range(50):
                last = quadratic_step(opt, p, np.array([0.0]))
            losses[mom] = last
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_state_size(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.ones(4)
        opt.step()
        assert opt.state_size() == 4


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_step(opt, p, np.array([1.0, 2.0]))
        np.testing.assert_allclose(p.data, [1.0, 2.0], atol=1e-3)

    def test_bias_correction_first_step(self):
        # After one step with constant grad g, Adam moves ≈ lr·sign(g).
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_skips_none_grads(self):
        p1, p2 = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.ones(2)
        opt.step()  # p2.grad is None — must not raise
        assert (p1.data != 0).all() and (p2.data == 0).all()

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_state_size(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p])
        p.grad = np.ones(3)
        opt.step()
        assert opt.state_size() == 6  # m and v

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0


class TestAdaGrad:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = AdaGrad([p], lr=1.0)
        for _ in range(400):
            quadratic_step(opt, p, np.array([0.0]))
        np.testing.assert_allclose(p.data, [0.0], atol=1e-2)

    def test_step_sizes_shrink(self):
        p = Parameter(np.array([0.0]))
        opt = AdaGrad([p], lr=1.0)
        moves = []
        for _ in range(3):
            before = p.data.copy()
            p.grad = np.array([1.0])
            opt.step()
            moves.append(abs(p.data[0] - before[0]))
        assert moves[0] > moves[1] > moves[2]


class TestOptimizerBase:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad_clears(self):
        p = Parameter(np.zeros(2))
        p.grad = np.ones(2)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_step_counts(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=0.1)
        opt.step()
        opt.step()
        assert opt.step_count == 2


class TestClipGradNorm:
    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        norm = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clips_above_max(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, atol=1e-6)

    def test_none_grads_skipped(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0
