"""Significance-utility tests: bootstrap CIs and paired tests."""

import numpy as np
import pytest

from repro.eval import RankingEvaluator, bootstrap_ci, paired_bootstrap_test, per_user_metrics


class TestBootstrapCI:
    def test_mean_inside_interval(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.5, 0.1, size=200)
        mean, low, high = bootstrap_ci(values, seed=0)
        assert low <= mean <= high

    def test_interval_narrows_with_n(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0.5, 0.2, size=20)
        large = rng.normal(0.5, 0.2, size=2000)
        _, lo_s, hi_s = bootstrap_ci(small, seed=0)
        _, lo_l, hi_l = bootstrap_ci(large, seed=0)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_constant_sample_zero_width(self):
        mean, low, high = bootstrap_ci(np.full(50, 0.3), seed=0)
        assert mean == low == high == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(5), confidence=1.0)

    def test_deterministic(self):
        values = np.random.default_rng(2).random(100)
        a = bootstrap_ci(values, seed=7)
        b = bootstrap_ci(values, seed=7)
        assert a == b


class TestPairedBootstrap:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(0)
        b = rng.random(300) * 0.2
        a = b + 0.1  # uniformly better
        result = paired_bootstrap_test(a, b, seed=0)
        assert result.significant
        assert result.mean_diff == pytest.approx(0.1)

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.random(300)
        b = a + rng.normal(0, 0.3, size=300)  # symmetric noise
        result = paired_bootstrap_test(a, b, seed=0)
        assert result.p_value > 0.01

    def test_negative_difference_not_significant(self):
        rng = np.random.default_rng(2)
        b = rng.random(200)
        a = b - 0.1
        result = paired_bootstrap_test(a, b, seed=0)
        assert not result.significant
        assert result.p_value > 0.9

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap_test(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap_test(np.array([]), np.array([]))

    def test_n_users_reported(self):
        result = paired_bootstrap_test(np.ones(17), np.zeros(17), seed=0)
        assert result.n_users == 17


class TestPerUserMetrics:
    def test_matches_evaluator_means(self, ooi_split):
        rng = np.random.default_rng(0)
        table = rng.normal(size=(ooi_split.train.num_users, ooi_split.train.num_items))
        score_fn = lambda users: table[users]  # noqa: E731
        recalls, ndcgs, users = per_user_metrics(score_fn, ooi_split.train, ooi_split.test, k=10)
        ev = RankingEvaluator(ooi_split.train, ooi_split.test, k=10)
        result = ev.evaluate(score_fn)
        assert result.recall == pytest.approx(recalls.mean())
        assert result.ndcg == pytest.approx(ndcgs.mean())
        assert len(users) == result.num_users

    def test_oracle_gets_ones(self, ooi_split):
        def oracle(users):
            scores = np.zeros((len(users), ooi_split.train.num_items))
            for row, u in enumerate(users):
                scores[row, ooi_split.test.items_of_user(int(u))] = 1.0
            return scores

        recalls, ndcgs, _ = per_user_metrics(oracle, ooi_split.train, ooi_split.test, k=20)
        # Users with ≤20 test items get perfect recall with the oracle.
        few = np.array(
            [len(ooi_split.test.items_of_user(int(u))) <= 20 for u in ooi_split.test.active_users()]
        )
        np.testing.assert_allclose(recalls[few], 1.0)
        np.testing.assert_allclose(ndcgs[few], 1.0)
