"""Cross-model scoring invariants.

Checks every registered model satisfies the contracts the evaluator and the
recommendation API rely on: score determinism at inference time, batching
invariance, exclusion handling, and basic learned-signal sanity.
"""

import numpy as np
import pytest

from repro.experiments.datasets import load_dataset
from repro.experiments.runner import MODEL_NAMES, build_model
from repro.models.base import FitConfig


@pytest.fixture(scope="module")
def tiny_setup():
    ds = load_dataset("ooi", scale="small", seed=29)
    ckg = ds.build_ckg()
    return ds, ckg


@pytest.fixture(scope="module")
def trained_registry(tiny_setup):
    ds, ckg = tiny_setup
    from repro.models import CKATConfig

    out = {}
    for name in MODEL_NAMES:
        model = build_model(
            name,
            ds,
            ckg,
            seed=0,
            ckat_config=CKATConfig(dim=8, relation_dim=8, layer_dims=(8,), kg_steps_per_epoch=2),
        )
        model.fit(ds.split.train, FitConfig(epochs=2, batch_size=256, seed=0))
        out[name] = model
    return out


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestScoringInvariants:
    def test_inference_deterministic(self, trained_registry, name):
        model = trained_registry[name]
        a = model.score_users(np.array([0, 1]))
        b = model.score_users(np.array([0, 1]))
        np.testing.assert_allclose(a, b)

    def test_batching_invariance(self, trained_registry, name):
        model = trained_registry[name]
        together = model.score_users(np.array([0, 2, 4]))
        alone = model.score_users(np.array([2]))
        np.testing.assert_allclose(together[1], alone[0], rtol=1e-8, atol=1e-10)

    def test_scores_finite(self, trained_registry, name, tiny_setup):
        ds, _ = tiny_setup
        model = trained_registry[name]
        scores = model.score_users(np.arange(min(8, ds.split.train.num_users)))
        assert np.isfinite(scores).all()

    def test_scores_not_constant(self, trained_registry, name):
        """A trained model must discriminate between items."""
        model = trained_registry[name]
        scores = model.score_users(np.array([0]))[0]
        assert scores.std() > 0

    def test_recommend_within_catalog(self, trained_registry, name, tiny_setup):
        ds, _ = tiny_setup
        model = trained_registry[name]
        recs = model.recommend(0, k=7)
        assert (recs >= 0).all() and (recs < ds.split.train.num_items).all()

    def test_recommend_rejects_negative_exclude(self, trained_registry, name):
        """Regression: a negative exclude id used to wrap around and silently
        mask the wrong item."""
        model = trained_registry[name]
        with pytest.raises(ValueError, match="exclude contains item ids"):
            model.recommend(0, k=5, exclude=np.array([0, -1]))

    def test_recommend_rejects_out_of_range_exclude(self, trained_registry, name):
        """Regression: an exclude id >= num_items used to raise a bare
        IndexError from deep inside numpy."""
        model = trained_registry[name]
        with pytest.raises(ValueError, match="exclude contains item ids"):
            model.recommend(0, k=5, exclude=np.array([model.num_items]))

    def test_recommend_all_items_excluded(self, trained_registry, name):
        """With every item excluded the clamp yields an empty result, never a
        -inf-masked id."""
        model = trained_registry[name]
        recs = model.recommend(0, k=5, exclude=np.arange(model.num_items))
        assert recs.size == 0
