"""Subgraph builders and entity-space tests (Section IV construction)."""

import numpy as np
import pytest

from repro.kg.ckg import _allocate_space
from repro.kg.subgraphs import (
    INTERACT,
    EntitySpace,
    KnowledgeSources,
    build_iag,
    build_uig,
    build_uug,
    relation_source_map,
)


class TestEntitySpace:
    def test_blocks_contiguous(self):
        space = EntitySpace()
        assert space.add_block("a", 3) == 0
        assert space.add_block("b", 5) == 3
        assert space.num_entities == 8

    def test_duplicate_block_rejected(self):
        space = EntitySpace()
        space.add_block("a", 1)
        with pytest.raises(ValueError):
            space.add_block("a", 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            EntitySpace().add_block("a", -1)

    def test_global_ids(self):
        space = EntitySpace()
        space.add_block("a", 3)
        space.add_block("b", 4)
        np.testing.assert_array_equal(space.global_ids("b", np.array([0, 3])), [3, 6])

    def test_global_ids_bounds_checked(self):
        space = EntitySpace()
        space.add_block("a", 3)
        with pytest.raises(ValueError):
            space.global_ids("a", np.array([3]))

    def test_owner_of(self):
        space = EntitySpace()
        space.add_block("a", 3)
        space.add_block("b", 2)
        assert space.owner_of(0) == "a"
        assert space.owner_of(4) == "b"
        with pytest.raises(ValueError):
            space.owner_of(9)

    def test_empty_block_allowed(self):
        space = EntitySpace()
        space.add_block("empty", 0)
        assert space.num_entities == 0


class TestKnowledgeSources:
    def test_labels(self):
        assert KnowledgeSources.best().label() == "UIG+UUG+LOC+DKG"
        assert KnowledgeSources.all_sources().label() == "UIG+UUG+LOC+DKG+MD"
        assert KnowledgeSources(uug=False, loc=True, dkg=False, md=False).label() == "UIG+LOC"

    def test_frozen(self):
        with pytest.raises(Exception):
            KnowledgeSources().uug = False


class TestBuildUIG:
    def test_triples_are_user_item(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_uig(space, np.array([0, 1, 1]), np.array([5, 6, 6]))
        assert len(store) == 2  # deduplicated
        user_off, _ = space.block("user")
        item_off, _ = space.block("item")
        assert (store.heads >= user_off).all()
        assert (store.tails >= item_off).all()
        assert store.relation_counts() == {INTERACT: 2}


class TestBuildUUG:
    def test_same_city_links_only(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_uug(space, ooi_population, max_neighbors=5, seed=0)
        user_off, user_size = space.block("user")
        heads = store.heads - user_off
        tails = store.tails - user_off
        assert (ooi_population.user_city[heads] == ooi_population.user_city[tails]).all()

    def test_no_self_loops(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_uug(space, ooi_population, seed=0)
        assert (store.heads != store.tails).all()

    def test_degree_cap_limits_size(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        small = build_uug(space, ooi_population, max_neighbors=2, seed=0)
        large = build_uug(space, ooi_population, max_neighbors=20, seed=0)
        assert len(small) <= len(large)

    def test_canonical_pair_order(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_uug(space, ooi_population, seed=0)
        assert (store.heads < store.tails).all()

    def test_invalid_max_neighbors(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        with pytest.raises(ValueError):
            build_uug(space, ooi_population, max_neighbors=0)


class TestBuildIAG:
    def test_loc_only(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_iag(space, ooi_catalog, KnowledgeSources(uug=False, loc=True, dkg=False, md=False))
        names = set(store.relation_counts())
        assert names == {"locatedAt", "memberOfArray"}

    def test_dkg_only_ooi(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_iag(space, ooi_catalog, KnowledgeSources(uug=False, loc=False, dkg=True, md=False))
        names = set(k for k, v in store.relation_counts().items() if v)
        assert names == {"hasDataType", "hasDiscipline", "generatedBy"}

    def test_md_only_ooi(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_iag(space, ooi_catalog, KnowledgeSources(uug=False, loc=False, dkg=False, md=True))
        names = set(k for k, v in store.relation_counts().items() if v)
        assert names == {"deliveryMethod", "inGroup", "processingLevel"}

    def test_gage_relations(self, gage_catalog):
        from repro.facility.users import build_user_population

        pop = build_user_population(gage_catalog, num_users=20, num_orgs=5, seed=0)
        space = _allocate_space(gage_catalog, pop)
        store = build_iag(space, gage_catalog, KnowledgeSources.all_sources())
        names = set(k for k, v in store.relation_counts().items() if v)
        assert names == {
            "locatedAt",
            "siteInCity",
            "cityInState",
            "hasDataType",
            "hasDiscipline",
            "inNetwork",
            "deliveryMethod",
        }

    def test_every_item_has_location_triple(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_iag(space, ooi_catalog, KnowledgeSources(loc=True, dkg=False, md=False))
        item_off, item_size = space.block("item")
        h, _ = store.triples_of_relation("locatedAt")
        items_with_loc = np.unique(h[(h >= item_off) & (h < item_off + item_size)]) - item_off
        assert len(items_with_loc) == ooi_catalog.num_objects

    def test_disabled_sources_empty(self, ooi_catalog, ooi_population):
        space = _allocate_space(ooi_catalog, ooi_population)
        store = build_iag(space, ooi_catalog, KnowledgeSources(uug=False, loc=False, dkg=False, md=False))
        assert len(store) == 0


class TestRelationSourceMap:
    def test_ooi_mapping(self, ooi_catalog):
        m = relation_source_map(ooi_catalog)
        assert m["locatedAt"] == "loc"
        assert m["generatedBy"] == "dkg"
        assert m["processingLevel"] == "md"
        assert len(m) == 8  # the paper's 8 OOI relations

    def test_gage_mapping(self, gage_catalog):
        m = relation_source_map(gage_catalog)
        assert m["cityInState"] == "loc"
        assert m["inNetwork"] == "md"
        assert len(m) == 7  # the paper's 7 GAGE relations
