"""Fault-tolerant training tests: full-state checkpoints and exact resume."""

import numpy as np
import pytest

from repro.autograd import Adam, AdaGrad, SGD, Parameter
from repro.data.interactions import InteractionDataset
from repro.io.checkpoints import (
    TrainingCheckpoint,
    load_parameters,
    load_training_checkpoint,
    normalize_checkpoint_path,
    save_parameters,
    save_training_checkpoint,
)
from repro.models import BPRMF, CKAT, CKATConfig, CKE, NFM, ItemFeatureTable
from repro.models.base import FitConfig


@pytest.fixture()
def tiny_data():
    rng = np.random.default_rng(0)
    n = 500
    return InteractionDataset(
        rng.integers(0, 40, n), rng.integers(0, 60, n), num_users=40, num_items=60
    )


def _params_equal(a, b):
    return all(np.array_equal(p.data, q.data) for p, q in zip(a.parameters(), b.parameters()))


class TestKillAndResume:
    def test_resume_is_bit_identical(self, tiny_data, tmp_path):
        """10 epochs straight == 4 epochs + kill + resume for 6 more."""
        cfg = FitConfig(epochs=10, batch_size=64, seed=3)
        straight = BPRMF(40, 60, dim=8, seed=1)
        ref = straight.fit(tiny_data, cfg)

        ck = tmp_path / "run.ckpt.npz"
        first = BPRMF(40, 60, dim=8, seed=1)
        first.fit(
            tiny_data,
            FitConfig(epochs=4, batch_size=64, seed=3),
            checkpoint_every=4,
            checkpoint_path=ck,
        )
        # The "killed" process is gone; a fresh one (even a differently
        # seeded model object) resumes from the checkpoint alone.
        resumed = BPRMF(40, 60, dim=8, seed=999)
        result = resumed.fit(tiny_data, cfg, resume_from=ck)
        assert _params_equal(straight, resumed)
        assert len(result.losses) == 10
        assert result.losses == ref.losses

    def test_resume_histories_match_uninterrupted(self, tiny_data, tmp_path):
        cfg = FitConfig(epochs=8, batch_size=64, seed=5)
        straight = BPRMF(40, 60, dim=8, seed=2)
        ref = straight.fit(tiny_data, cfg)

        ck = tmp_path / "run"
        part = BPRMF(40, 60, dim=8, seed=2)
        part.fit(
            tiny_data,
            FitConfig(epochs=3, batch_size=64, seed=5),
            checkpoint_every=3,
            checkpoint_path=ck,
        )
        resumed = BPRMF(40, 60, dim=8, seed=2)
        got = resumed.fit(tiny_data, cfg, resume_from=ck)
        assert got.losses == ref.losses
        assert got.extra_losses == ref.extra_losses
        assert _params_equal(straight, resumed)

    def test_resume_at_every_boundary(self, tiny_data, tmp_path):
        """Checkpointing at any epoch boundary resumes bit-identically."""
        cfg = FitConfig(epochs=5, batch_size=128, seed=11)
        straight = BPRMF(40, 60, dim=4, seed=0)
        straight.fit(tiny_data, cfg)
        for cut in (1, 2, 3, 4):
            ck = tmp_path / f"cut{cut}.ckpt.npz"
            part = BPRMF(40, 60, dim=4, seed=0)
            part.fit(
                tiny_data,
                FitConfig(epochs=cut, batch_size=128, seed=11),
                checkpoint_every=cut,
                checkpoint_path=ck,
            )
            resumed = BPRMF(40, 60, dim=4, seed=0)
            resumed.fit(tiny_data, cfg, resume_from=ck)
            assert _params_equal(straight, resumed), f"divergence resuming at epoch {cut}"

    def test_resume_with_best_epoch_protocol(self, tiny_data, tmp_path):
        """The best-snapshot protocol survives a kill+resume unchanged."""

        def make_callback(model, scores):
            it = iter(scores)
            return lambda: {"recall@20": next(it)}

        scores = [0.1, 0.9, 0.2, 0.15, 0.05]
        cfg = dict(batch_size=64, seed=7, eval_every=1, keep_best_metric="recall@20")
        straight = BPRMF(40, 60, dim=8, seed=4)
        straight.fit(
            tiny_data,
            FitConfig(epochs=5, **cfg),
            eval_callback=make_callback(straight, scores),
        )

        ck = tmp_path / "best.ckpt.npz"
        part = BPRMF(40, 60, dim=8, seed=4)
        part.fit(
            tiny_data,
            FitConfig(epochs=3, **cfg),
            eval_callback=make_callback(part, scores[:3]),
            checkpoint_every=3,
            checkpoint_path=ck,
        )
        resumed = BPRMF(40, 60, dim=8, seed=4)
        result = resumed.fit(
            tiny_data,
            FitConfig(epochs=5, **cfg),
            eval_callback=make_callback(resumed, scores[3:]),
            resume_from=ck,
        )
        # Best score (0.9 at epoch 2) was snapshotted before the kill and
        # restored at the end of the resumed run.
        assert _params_equal(straight, resumed)
        assert [e["recall@20"] for e in result.eval_history] == scores

    @pytest.mark.slow
    def test_resume_model_with_aux_phase(self, ooi_split, ooi_ckg_best, tmp_path):
        """CKE's alternating TransR phase (extra rng + optimizer use) resumes
        bit-identically too."""
        M, N = ooi_split.train.num_users, ooi_split.train.num_items
        cfg = FitConfig(epochs=4, batch_size=256, seed=0)
        straight = CKE(M, N, ooi_ckg_best, dim=8, seed=0)
        straight.fit(ooi_split.train, cfg)

        ck = tmp_path / "cke.ckpt.npz"
        part = CKE(M, N, ooi_ckg_best, dim=8, seed=0)
        part.fit(
            ooi_split.train,
            FitConfig(epochs=2, batch_size=256, seed=0),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        resumed = CKE(M, N, ooi_ckg_best, dim=8, seed=0)
        resumed.fit(ooi_split.train, cfg, resume_from=ck)
        assert _params_equal(straight, resumed)


class TestExtraRngState:
    """Auxiliary-RNG checkpoint hooks (dropout generators live outside the
    training loop's rng, so they need their own save/restore channel)."""

    def test_base_recommender_has_no_extra_state(self):
        assert BPRMF(4, 5, dim=2, seed=0).extra_rng_state() is None

    def test_restore_without_implementation_raises(self):
        model = BPRMF(4, 5, dim=2, seed=0)
        with pytest.raises(NotImplementedError, match="restore_extra_rng_state"):
            model.restore_extra_rng_state({"dropout": {}})

    def test_nfm_dropout_rng_roundtrip(self, ooi_split, ooi_ckg_best):
        M, N = ooi_split.train.num_users, ooi_split.train.num_items
        model = NFM(M, N, ItemFeatureTable(ooi_ckg_best), dim=8, hidden_dim=8, seed=0)
        state = model.extra_rng_state()
        assert "dropout" in state
        first = model._rng.normal(size=16)
        model.restore_extra_rng_state(state)
        replay = model._rng.normal(size=16)
        np.testing.assert_array_equal(first, replay)

    def test_checkpoint_carries_extra_rng_state(self, tmp_path):
        extra = {"dropout": np.random.default_rng(9).bit_generator.state}
        ckpt = TrainingCheckpoint(
            epoch=1,
            params={"w": np.zeros((2, 2))},
            optimizer_state={"version": 1, "type": "SGD", "step_count": 2, "slots": {}},
            rng_state=np.random.default_rng(1).bit_generator.state,
            losses=[1.0],
            extra_losses=[0.0],
            eval_history=[],
            best_score=None,
            best_snapshot=None,
            seconds=0.1,
            config={"epochs": 2, "batch_size": 8, "lr": 0.01, "l2": 0.0, "seed": 0},
            extra_rng_state=extra,
        )
        save_training_checkpoint(tmp_path / "x.ckpt", ckpt)
        loaded = load_training_checkpoint(tmp_path / "x.ckpt")
        assert loaded.extra_rng_state == extra

    def test_checkpoint_without_extra_state_loads_none(self, tmp_path):
        ckpt = TrainingCheckpoint(
            epoch=1,
            params={"w": np.zeros((2, 2))},
            optimizer_state={"version": 1, "type": "SGD", "step_count": 2, "slots": {}},
            rng_state=np.random.default_rng(1).bit_generator.state,
            losses=[1.0],
            extra_losses=[0.0],
            eval_history=[],
            best_score=None,
            best_snapshot=None,
            seconds=0.1,
            config={"epochs": 2, "batch_size": 8, "lr": 0.01, "l2": 0.0, "seed": 0},
        )
        save_training_checkpoint(tmp_path / "y.ckpt", ckpt)
        assert load_training_checkpoint(tmp_path / "y.ckpt").extra_rng_state is None

    @pytest.mark.slow
    def test_ckat_dropout_resume_bit_identical(self, ooi_split, ooi_ckg_best, tmp_path):
        """CKAT with dropout consumes its private dropout generator every
        forward pass; without the extra-rng channel a resumed run replays
        different masks and silently diverges."""
        M, N = ooi_split.train.num_users, ooi_split.train.num_items
        cfg_kwargs = dict(
            dim=8, relation_dim=8, layer_dims=(8, 4), dropout=0.1, kg_steps_per_epoch=2
        )
        cfg = FitConfig(epochs=4, batch_size=256, seed=0)
        straight = CKAT(M, N, ooi_ckg_best, CKATConfig(**cfg_kwargs), seed=0)
        straight.fit(ooi_split.train, cfg)

        ck = tmp_path / "ckat.ckpt.npz"
        part = CKAT(M, N, ooi_ckg_best, CKATConfig(**cfg_kwargs), seed=0)
        part.fit(
            ooi_split.train,
            FitConfig(epochs=2, batch_size=256, seed=0),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        resumed = CKAT(M, N, ooi_ckg_best, CKATConfig(**cfg_kwargs), seed=0)
        resumed.fit(ooi_split.train, cfg, resume_from=ck)
        assert _params_equal(straight, resumed)


class TestResumeValidation:
    def test_config_mismatch_rejected(self, tiny_data, tmp_path):
        ck = tmp_path / "a.ckpt.npz"
        m = BPRMF(40, 60, dim=8, seed=0)
        m.fit(
            tiny_data,
            FitConfig(epochs=2, batch_size=64, seed=3),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        fresh = BPRMF(40, 60, dim=8, seed=0)
        with pytest.raises(ValueError, match="config mismatch"):
            fresh.fit(tiny_data, FitConfig(epochs=4, batch_size=64, seed=4), resume_from=ck)
        with pytest.raises(ValueError, match="config mismatch"):
            fresh.fit(tiny_data, FitConfig(epochs=4, batch_size=32, seed=3), resume_from=ck)

    def test_fewer_epochs_than_checkpoint_rejected(self, tiny_data, tmp_path):
        ck = tmp_path / "b.ckpt.npz"
        m = BPRMF(40, 60, dim=8, seed=0)
        m.fit(
            tiny_data,
            FitConfig(epochs=3, batch_size=64, seed=3),
            checkpoint_every=3,
            checkpoint_path=ck,
        )
        fresh = BPRMF(40, 60, dim=8, seed=0)
        with pytest.raises(ValueError, match="completed epochs"):
            fresh.fit(tiny_data, FitConfig(epochs=2, batch_size=64, seed=3), resume_from=ck)

    def test_architecture_mismatch_rejected(self, tiny_data, tmp_path):
        ck = tmp_path / "c.ckpt.npz"
        m = BPRMF(40, 60, dim=8, seed=0)
        m.fit(
            tiny_data,
            FitConfig(epochs=2, batch_size=64, seed=3),
            checkpoint_every=2,
            checkpoint_path=ck,
        )
        other_dim = BPRMF(40, 60, dim=16, seed=0)
        with pytest.raises(ValueError, match="shape mismatch"):
            other_dim.fit(tiny_data, FitConfig(epochs=4, batch_size=64, seed=3), resume_from=ck)

    def test_checkpoint_every_requires_path(self, tiny_data):
        m = BPRMF(40, 60, dim=4, seed=0)
        with pytest.raises(ValueError, match="checkpoint_path"):
            m.fit(tiny_data, FitConfig(epochs=1, batch_size=64), checkpoint_every=1)
        with pytest.raises(ValueError, match="checkpoint_every"):
            m.fit(tiny_data, FitConfig(epochs=1, batch_size=64), checkpoint_every=-1)


class TestTrainingCheckpointFormat:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        ckpt = TrainingCheckpoint(
            epoch=7,
            params={"user_emb": rng.normal(size=(4, 3)), "item_emb": rng.normal(size=(5, 3))},
            optimizer_state={
                "version": 1,
                "type": "Adam",
                "lr": 0.01,
                "step_count": 70,
                "slots": {"m": {0: rng.normal(size=(4, 3))}, "v": {0: rng.normal(size=(4, 3))}},
            },
            rng_state=np.random.default_rng(5).bit_generator.state,
            losses=[0.9, 0.8],
            extra_losses=[0.0, 0.0],
            eval_history=[{"recall@20": 0.3, "epoch": 2}],
            best_score=0.3,
            best_snapshot={"user_emb": rng.normal(size=(4, 3)), "item_emb": rng.normal(size=(5, 3))},
            seconds=12.5,
            config={"epochs": 10, "batch_size": 64, "lr": 0.01, "l2": 0.0, "seed": 3},
        )
        written = save_training_checkpoint(tmp_path / "t.ckpt", ckpt)
        assert written.suffix == ".npz"
        loaded = load_training_checkpoint(tmp_path / "t.ckpt")
        assert loaded.epoch == 7
        assert loaded.losses == ckpt.losses
        assert loaded.eval_history == ckpt.eval_history
        assert loaded.best_score == ckpt.best_score
        assert loaded.rng_state == ckpt.rng_state
        assert loaded.config == ckpt.config
        assert loaded.optimizer_state["step_count"] == 70
        for key in ckpt.params:
            np.testing.assert_array_equal(loaded.params[key], ckpt.params[key])
            np.testing.assert_array_equal(loaded.best_snapshot[key], ckpt.best_snapshot[key])
        np.testing.assert_array_equal(
            loaded.optimizer_state["slots"]["m"][0], ckpt.optimizer_state["slots"]["m"][0]
        )

    def test_wrong_format_rejected(self, tmp_path):
        model = BPRMF(5, 6, dim=2, seed=0)
        path = save_parameters(tmp_path / "w.npz", model)
        with pytest.raises(ValueError, match="training checkpoint"):
            load_training_checkpoint(path)

    def test_atomic_overwrite_leaves_no_tmp(self, tiny_data, tmp_path):
        ck = tmp_path / "atomic.ckpt.npz"
        m = BPRMF(40, 60, dim=4, seed=0)
        m.fit(
            tiny_data,
            FitConfig(epochs=4, batch_size=128, seed=0),
            checkpoint_every=1,
            checkpoint_path=ck,
        )
        assert ck.exists()
        assert list(tmp_path.glob("*.tmp.npz")) == []
        assert load_training_checkpoint(ck).epoch == 4


class TestSuffixNormalization:
    def test_save_load_without_npz_suffix(self, tmp_path):
        """save("m.ckpt") used to write m.ckpt.npz and then fail to load."""
        model = BPRMF(6, 8, dim=4, seed=0)
        original = [p.data.copy() for p in model.parameters()]
        written = save_parameters(tmp_path / "m.ckpt", model)
        assert written == tmp_path / "m.ckpt.npz"
        for p in model.parameters():
            p.data += 1.0
        load_parameters(tmp_path / "m.ckpt", model)
        for p, orig in zip(model.parameters(), original):
            np.testing.assert_array_equal(p.data, orig)

    def test_normalize_checkpoint_path(self):
        import pathlib

        assert normalize_checkpoint_path("m.ckpt") == pathlib.Path("m.ckpt.npz")
        assert normalize_checkpoint_path("m.npz") == pathlib.Path("m.npz")
        assert normalize_checkpoint_path(pathlib.Path("d") / "m") == pathlib.Path("d/m.npz")


class TestOptimizerState:
    def _step(self, opt, params, rng):
        for p in params:
            p.grad = rng.normal(size=p.data.shape)
        opt.step()

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (Adam, {"lr": 0.01}),
            (SGD, {"lr": 0.01, "momentum": 0.5}),
            (AdaGrad, {"lr": 0.05}),
        ],
    )
    def test_state_roundtrip_continues_identically(self, cls, kwargs):
        rng = np.random.default_rng(0)
        init = [rng.normal(size=(3, 2)), rng.normal(size=(4,))]

        def fresh_params():
            return [Parameter(a.copy(), name=f"p{i}") for i, a in enumerate(init)]

        pa = fresh_params()
        oa = cls(pa, **kwargs)
        grads = np.random.default_rng(1)
        for _ in range(5):
            self._step(oa, pa, grads)
        state = oa.state_dict()

        pb = fresh_params()
        for p, q in zip(pb, pa):
            p.data[...] = q.data
        ob = cls(pb, **kwargs)
        ob.load_state_dict(state)
        assert ob.step_count == oa.step_count

        ga = np.random.default_rng(2)
        gb = np.random.default_rng(2)
        for _ in range(3):
            self._step(oa, pa, ga)
            self._step(ob, pb, gb)
        for p, q in zip(pa, pb):
            np.testing.assert_array_equal(p.data, q.data)

    def test_type_mismatch_rejected(self):
        p = [Parameter(np.zeros(3), name="p")]
        state = Adam(p, lr=0.01).state_dict()
        with pytest.raises(ValueError, match="Adam"):
            SGD([Parameter(np.zeros(3), name="p")], lr=0.01).load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        p = [Parameter(np.zeros((2, 2)), name="p")]
        opt = Adam(p, lr=0.01)
        p[0].grad = np.ones((2, 2))
        opt.step()
        state = opt.state_dict()
        other = Adam([Parameter(np.zeros((3, 3)), name="p")], lr=0.01)
        with pytest.raises(ValueError, match="shape"):
            other.load_state_dict(state)

    def test_state_dict_is_a_snapshot(self):
        p = [Parameter(np.zeros(2), name="p")]
        opt = Adam(p, lr=0.01)
        p[0].grad = np.ones(2)
        opt.step()
        state = opt.state_dict()
        before = state["slots"]["m"][0].copy()
        p[0].grad = np.ones(2)
        opt.step()
        np.testing.assert_array_equal(state["slots"]["m"][0], before)


class TestFitConfigValidation:
    def test_keep_best_without_eval_every_rejected(self):
        with pytest.raises(ValueError, match="keep_best_metric"):
            FitConfig(keep_best_metric="recall@20")

    def test_negative_eval_every_rejected(self):
        with pytest.raises(ValueError, match="eval_every"):
            FitConfig(eval_every=-1)

    def test_keep_best_without_callback_rejected(self, tiny_data):
        m = BPRMF(40, 60, dim=4, seed=0)
        cfg = FitConfig(epochs=1, batch_size=64, eval_every=1, keep_best_metric="recall@20")
        with pytest.raises(ValueError, match="eval_callback"):
            m.fit(tiny_data, cfg)

    def test_mutated_config_caught_by_fit(self, tiny_data):
        """run_single_model-style post-construction mutation is validated too."""
        m = BPRMF(40, 60, dim=4, seed=0)
        cfg = FitConfig(epochs=1, batch_size=64)
        cfg.keep_best_metric = "recall@20"  # bypasses __post_init__
        with pytest.raises(ValueError):
            m.fit(tiny_data, cfg)


class TestRecommendExclusion:
    def test_excluded_items_never_returned(self):
        model = BPRMF(4, 10, dim=4, seed=0)
        exclude = np.arange(8)  # leaves only items 8, 9
        recs = model.recommend(0, k=5, exclude=exclude)
        assert set(recs.tolist()) <= {8, 9}
        assert len(recs) == 2

    def test_all_items_excluded_gives_empty(self):
        model = BPRMF(4, 10, dim=4, seed=0)
        recs = model.recommend(1, k=3, exclude=np.arange(10))
        assert recs.size == 0

    def test_duplicate_excludes_counted_once(self):
        model = BPRMF(4, 10, dim=4, seed=0)
        exclude = np.array([0, 0, 1, 1, 2, 2, 3, 4, 5, 6, 7])
        recs = model.recommend(2, k=10, exclude=exclude)
        assert set(recs.tolist()) == {8, 9}

    def test_unexcluded_behavior_unchanged(self):
        model = BPRMF(4, 10, dim=4, seed=0)
        recs = model.recommend(0, k=3)
        assert len(recs) == 3
        scores = model.score_users(np.array([0]))[0]
        assert list(recs) == list(np.argsort(-scores, kind="stable")[:3])
