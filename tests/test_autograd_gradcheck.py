"""Tests for the public gradcheck utility."""

import numpy as np
import pytest

from repro.autograd import GradcheckError, Parameter, Tensor, functional as F, gradcheck
from repro.autograd.gradcheck import numerical_gradient


class TestGradcheck:
    def test_passes_on_correct_gradients(self):
        rng = np.random.default_rng(0)
        w = Parameter(rng.normal(size=(3, 4)))
        c = Tensor(rng.normal(size=(3, 4)))
        assert gradcheck(lambda: F.sum(F.mul(F.tanh(w), c)), [w])

    def test_fails_on_broken_gradient(self):
        # Sabotage: a "loss" whose analytic gradient we corrupt by detaching.
        rng = np.random.default_rng(1)
        w = Parameter(rng.normal(size=(4,)))

        def broken_loss():
            # detach() cuts the tape: analytic grad is zero, numeric is not.
            return F.sum(F.mul(w.detach(), w.detach()))

        # With a detached loss, backward() cannot even be called (no grad).
        with pytest.raises((GradcheckError, RuntimeError)):
            gradcheck(broken_loss, [w])

    def test_nonscalar_loss_rejected(self):
        w = Parameter(np.ones(3))
        with pytest.raises(ValueError):
            gradcheck(lambda: F.mul(w, w), [w])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            gradcheck(lambda: None, [])

    def test_numerical_gradient_quadratic(self):
        w = Parameter(np.array([3.0, -2.0]))
        num = numerical_gradient(lambda: F.sum(F.mul(w, w)), w)
        np.testing.assert_allclose(num, 2.0 * w.data, atol=1e-5)

    def test_detects_wrong_scale(self):
        """An op with a deliberately mis-scaled backward must be caught."""
        rng = np.random.default_rng(2)
        w = Parameter(rng.normal(size=(3,)))

        def bad_double(t):
            # Forward doubles; backward lies (factor 3 instead of 2).
            return Tensor(
                t.data * 2.0,
                requires_grad=True,
                _parents=(t,),
                _backward=lambda g: t.accumulate_grad(g * 3.0, owned=True),
            )

        with pytest.raises(GradcheckError):
            gradcheck(lambda: F.sum(bad_double(w)), [w])

    def test_unused_parameter_passes(self):
        """A parameter the loss ignores has zero gradient both ways."""
        rng = np.random.default_rng(3)
        w = Parameter(rng.normal(size=(3,)))
        unused = Parameter(rng.normal(size=(2,)))
        assert gradcheck(lambda: F.sum(F.mul(w, w)), [w, unused])
