"""Sparse-row gradient path: SparseRowGrad semantics, take_rows emission,
accumulation rules (sparse+sparse merge, sparse+dense densify), optimizer
scatter-updates for SGD/Adam/AdaGrad — including duplicate-index batches and
bitwise agreement with the dense path — lazy-Adam row-step bookkeeping, and
its state_dict/JSON round-trip."""

import contextlib
import json

import numpy as np
import pytest

from repro.autograd import (
    Adam,
    AdaGrad,
    Parameter,
    SGD,
    SparseRowGrad,
    dense_grads,
    sparse_grads_enabled,
)
from repro.autograd import functional as F
from repro.autograd.optim import clip_grad_norm


def _scatter_reference(shape, idx, vals):
    """The dense np.add.at scatter the sparse path must match bitwise."""
    dense = np.zeros(shape)
    np.add.at(dense, idx, vals)
    return dense


# ------------------------------------------------------------ SparseRowGrad
class TestSparseRowGrad:
    def test_values_shape_validated(self):
        with pytest.raises(ValueError, match="values shape"):
            SparseRowGrad((4, 3), np.array([0, 1]), np.ones((3, 3)))

    def test_indices_range_validated(self):
        with pytest.raises(IndexError):
            SparseRowGrad((4, 3), np.array([0, 4]), np.ones((2, 3)))
        with pytest.raises(IndexError):
            SparseRowGrad((4, 3), np.array([-1]), np.ones((1, 3)))

    def test_coalesce_sums_duplicates(self):
        rng = np.random.default_rng(0)
        idx = np.array([2, 0, 2, 2, 1, 0])
        vals = rng.normal(size=(6, 3))
        g = SparseRowGrad((5, 3), idx, vals).coalesce()
        assert g.coalesced
        np.testing.assert_array_equal(g.indices, [0, 1, 2])
        ref = _scatter_reference((5, 3), idx, vals)
        # Duplicated rows agree to summation associativity; singleton rows
        # (index 1 appears once) come back bit-for-bit.
        np.testing.assert_allclose(g.to_dense(), ref, rtol=1e-12, atol=0)
        np.testing.assert_array_equal(g.to_dense()[1], ref[1])

    def test_coalesce_is_idempotent_and_counts_rows(self):
        g = SparseRowGrad((5, 2), np.array([1, 1, 3]), np.ones((3, 2)))
        assert g.nnz == 3
        c = g.coalesce()
        assert c.nnz == 2
        assert c.coalesce() is c

    def test_empty_grad(self):
        g = SparseRowGrad((4, 2), np.zeros(0, dtype=np.intp), np.zeros((0, 2)))
        assert g.nnz == 0
        np.testing.assert_array_equal(g.to_dense(), np.zeros((4, 2)))
        np.testing.assert_array_equal(g.coalesce().to_dense(), np.zeros((4, 2)))

    def test_add_to_dense_scatters_in_place(self):
        base = np.ones((4, 2))
        g = SparseRowGrad((4, 2), np.array([1, 1]), np.full((2, 2), 2.0))
        out = g.add_to_dense(base)
        assert out is base
        np.testing.assert_array_equal(base[1], [5.0, 5.0])
        np.testing.assert_array_equal(base[0], [1.0, 1.0])

    def test_merge_concatenates_rows(self):
        a = SparseRowGrad((4, 2), np.array([0]), np.ones((1, 2)))
        b = SparseRowGrad((4, 2), np.array([0, 3]), np.ones((2, 2)))
        a.merge_(b)
        assert a.nnz == 3 and not a.coalesced
        np.testing.assert_array_equal(a.to_dense()[0], [2.0, 2.0])
        with pytest.raises(ValueError, match="merge"):
            a.merge_(SparseRowGrad((5, 2), np.array([0]), np.ones((1, 2))))

    def test_numpy_interop(self):
        g = SparseRowGrad((3, 2), np.array([1]), np.full((1, 2), 2.0))
        # __array__ lets np.allclose / assert_allclose densify transparently.
        assert np.allclose(g, g.to_dense())
        np.testing.assert_allclose(np.asarray(g), g.to_dense())
        copied = g.copy()
        assert isinstance(copied, np.ndarray)
        np.testing.assert_array_equal(copied, g.to_dense())


# --------------------------------------------------------- backward emission
class TestTakeRowsEmission:
    def test_leaf_parameter_gets_sparse_grad(self):
        W = Parameter(np.arange(12.0).reshape(4, 3), name="W")
        idx = np.array([1, 1, 3])
        F.sum(F.take_rows(W, idx)).backward()
        assert isinstance(W.grad, SparseRowGrad)
        np.testing.assert_array_equal(
            W.grad.to_dense(), _scatter_reference((4, 3), idx, np.ones((3, 3)))
        )

    def test_duplicate_batch_matches_add_at(self):
        rng = np.random.default_rng(1)
        W = Parameter(rng.normal(size=(6, 4)))
        idx = np.array([5, 0, 5, 5, 2, 0, 1, 5])
        c = rng.normal(size=(len(idx), 4))
        F.sum(F.mul(F.take_rows(W, idx), F.astensor(c))).backward()
        np.testing.assert_allclose(
            W.grad.to_dense(), _scatter_reference((6, 4), idx, c), rtol=1e-12, atol=0
        )

    def test_unique_batch_matches_add_at_bitwise(self):
        rng = np.random.default_rng(8)
        W = Parameter(rng.normal(size=(6, 4)))
        idx = np.array([5, 0, 2, 1])
        c = rng.normal(size=(len(idx), 4))
        F.sum(F.mul(F.take_rows(W, idx), F.astensor(c))).backward()
        np.testing.assert_array_equal(
            W.grad.to_dense(), _scatter_reference((6, 4), idx, c)
        )

    def test_intermediate_tensor_gets_dense_grad(self):
        a = Parameter(np.ones((4, 3)))
        b = F.mul(a, a)  # non-leaf gather source
        F.sum(F.take_rows(b, np.array([0, 2]))).backward()
        assert isinstance(a.grad, np.ndarray)

    def test_dense_grads_context_forces_dense(self):
        W = Parameter(np.ones((4, 3)))
        assert sparse_grads_enabled()
        with dense_grads():
            assert not sparse_grads_enabled()
            F.sum(F.take_rows(W, np.array([0, 1]))).backward()
        assert sparse_grads_enabled()
        assert isinstance(W.grad, np.ndarray)

    def test_sparse_plus_sparse_merges(self):
        W = Parameter(np.ones((5, 2)))
        loss = F.add(
            F.sum(F.take_rows(W, np.array([0, 1]))),
            F.sum(F.take_rows(W, np.array([1, 4]))),
        )
        loss.backward()
        assert isinstance(W.grad, SparseRowGrad)
        expected = np.zeros((5, 2))
        np.add.at(expected, [0, 1, 1, 4], np.ones((4, 2)))
        np.testing.assert_array_equal(W.grad.to_dense(), expected)

    def test_sparse_plus_dense_densifies(self):
        W = Parameter(np.ones((5, 2)))
        loss = F.add(F.sum(F.take_rows(W, np.array([0, 0]))), F.sum(W))
        loss.backward()
        assert isinstance(W.grad, np.ndarray)
        expected = np.ones((5, 2))
        expected[0] += 2.0
        np.testing.assert_array_equal(W.grad, expected)

    def test_sparse_grad_shape_mismatch_rejected(self):
        W = Parameter(np.ones((5, 2)))
        with pytest.raises(ValueError, match="sparse grad shape"):
            W.accumulate_grad(SparseRowGrad((4, 2), np.array([0]), np.ones((1, 2))))

    def test_empty_gather_backward(self):
        W = Parameter(np.ones((4, 2)))
        out = F.take_rows(W, np.zeros(0, dtype=np.int64))
        F.sum(out).backward()
        assert isinstance(W.grad, SparseRowGrad)
        assert W.grad.nnz == 0
        opt = SGD([W], lr=0.1)
        opt.step()  # no-op, must not raise
        np.testing.assert_array_equal(W.data, np.ones((4, 2)))


# --------------------------------------------------- optimizer scatter paths
def _run_training(opt_factory, batches, *, dense, n=20, d=4):
    """Train one embedding table over fixed index batches; return final data.

    ``d=None`` uses a 1-D parameter (an embedding "table" of scalars, the
    bias-vector case).
    """
    shape = (n,) if d is None else (n, d)
    rng = np.random.default_rng(7)
    W = Parameter(rng.normal(size=shape), name="emb")
    coef = rng.normal(size=shape)  # fixed per-row targets
    opt = opt_factory([W])
    ctx = dense_grads() if dense else contextlib.nullcontext()
    with ctx:
        for idx in batches:
            opt.zero_grad()
            out = F.take_rows(W, idx)
            loss = F.sum(F.mul(out, F.astensor(coef[idx])))
            loss.backward()
            opt.step()
    return W, opt


def _partial_batches(n, steps=12, seed=3):
    """Index batches with duplicates that never cover the whole table."""
    rng = np.random.default_rng(seed)
    return [rng.integers(0, n, size=9) for _ in range(steps)]


def _unique_batches(n, steps=12, seed=5, k=7):
    """Duplicate-free index batches (coalescing is then exact, not rounded)."""
    rng = np.random.default_rng(seed)
    return [rng.choice(n, size=k, replace=False) for _ in range(steps)]


def _full_batches(n, steps=8, seed=4):
    """Batches covering every row each step (plus duplicated extras)."""
    rng = np.random.default_rng(seed)
    return [
        np.concatenate([rng.permutation(n), rng.integers(0, n, size=5)])
        for _ in range(steps)
    ]


class TestOptimizerEquivalence:
    @pytest.mark.parametrize(
        "factory",
        [lambda ps: SGD(ps, lr=0.05), lambda ps: AdaGrad(ps, lr=0.05)],
        ids=["sgd", "adagrad"],
    )
    def test_bitwise_equals_dense_on_unique_batches(self, factory):
        batches = _unique_batches(20)
        sparse_W, _ = _run_training(factory, batches, dense=False)
        dense_W, _ = _run_training(factory, batches, dense=True)
        np.testing.assert_array_equal(sparse_W.data, dense_W.data)

    @pytest.mark.parametrize(
        "factory",
        [lambda ps: SGD(ps, lr=0.05), lambda ps: AdaGrad(ps, lr=0.05)],
        ids=["sgd", "adagrad"],
    )
    def test_close_to_dense_on_duplicate_batches(self, factory):
        batches = _partial_batches(20)
        sparse_W, _ = _run_training(factory, batches, dense=False)
        dense_W, _ = _run_training(factory, batches, dense=True)
        np.testing.assert_allclose(sparse_W.data, dense_W.data, rtol=1e-10, atol=1e-14)

    def test_adam_single_step_equals_dense(self):
        batches = _partial_batches(20, steps=1)
        sparse_W, _ = _run_training(lambda ps: Adam(ps, lr=0.01), batches, dense=False)
        dense_W, _ = _run_training(lambda ps: Adam(ps, lr=0.01), batches, dense=True)
        np.testing.assert_allclose(sparse_W.data, dense_W.data, rtol=1e-10, atol=0)

    def test_adam_full_coverage_equals_dense(self):
        # With every row touched each step, lazy decay reduces to eager decay
        # and the two paths must agree to rounding.
        batches = _full_batches(20)
        sparse_W, _ = _run_training(lambda ps: Adam(ps, lr=0.01), batches, dense=False)
        dense_W, _ = _run_training(lambda ps: Adam(ps, lr=0.01), batches, dense=True)
        np.testing.assert_allclose(sparse_W.data, dense_W.data, rtol=1e-10, atol=0)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            lambda ps: SGD(ps, lr=0.05, weight_decay=1e-3),
            lambda ps: Adam(ps, lr=0.01, weight_decay=1e-3),
            lambda ps: AdaGrad(ps, lr=0.05, weight_decay=1e-3),
        ],
        ids=["sgd-momentum", "sgd-wd", "adam-wd", "adagrad-wd"],
    )
    def test_dense_semantics_fallback(self, factory):
        # Configurations whose update couples untouched rows densify the
        # sparse grad and run the exact dense update on it: bit-identical on
        # duplicate-free batches, rounding-level otherwise.
        unique = _unique_batches(20)
        sparse_W, _ = _run_training(factory, unique, dense=False)
        dense_W, _ = _run_training(factory, unique, dense=True)
        np.testing.assert_array_equal(sparse_W.data, dense_W.data)
        dup = _partial_batches(20)
        sparse_W, _ = _run_training(factory, dup, dense=False)
        dense_W, _ = _run_training(factory, dup, dense=True)
        np.testing.assert_allclose(sparse_W.data, dense_W.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize(
        "factory",
        [lambda ps: SGD(ps, lr=0.1), lambda ps: AdaGrad(ps, lr=0.05)],
        ids=["sgd", "adagrad"],
    )
    def test_one_dimensional_parameter(self, factory):
        batches = _unique_batches(10, k=5)
        sparse_W, _ = _run_training(factory, batches, dense=False, n=10, d=None)
        dense_W, _ = _run_training(factory, batches, dense=True, n=10, d=None)
        np.testing.assert_allclose(sparse_W.data, dense_W.data, rtol=1e-10, atol=0)


class TestLazyAdam:
    def _sparse_step(self, opt, p, idx, val):
        opt.zero_grad()
        p.grad = SparseRowGrad(p.data.shape, np.asarray(idx), np.asarray(val, dtype=np.float64))
        opt.step()

    def test_untouched_rows_stay_put(self):
        W = Parameter(np.ones((4, 2)), name="W")
        opt = Adam([W], lr=0.1)
        before = W.data.copy()
        self._sparse_step(opt, W, [0, 1], np.ones((2, 2)))
        np.testing.assert_array_equal(W.data[2:], before[2:])
        assert not np.array_equal(W.data[:2], before[:2])

    def test_moment_decay_catches_up_on_next_touch(self):
        b1, b2 = 0.9, 0.999
        W = Parameter(np.zeros((3, 1)), name="W")
        opt = Adam([W], lr=0.1, betas=(b1, b2))
        # t=1 touches rows 0 and 1; t=2,3 touch row 0 only; t=4 touches row 1.
        self._sparse_step(opt, W, [0, 1], [[1.0], [1.0]])
        m1 = opt._m[id(W)][1, 0]
        assert m1 == pytest.approx((1 - b1) * 1.0)
        for _ in range(2):
            self._sparse_step(opt, W, [0], [[1.0]])
        # Row 1's moment buffer is unflushed while the row sleeps...
        assert opt._m[id(W)][1, 0] == m1
        assert opt._last[id(W)][1] == 1
        self._sparse_step(opt, W, [1], [[2.0]])
        # ...and decays by beta**(t - last) = beta**3 on the next touch.
        assert opt._m[id(W)][1, 0] == pytest.approx(b1**3 * m1 + (1 - b1) * 2.0)
        assert opt._last[id(W)][1] == 4

    def test_dense_step_catches_up_lazy_rows(self):
        b1, b2 = 0.9, 0.999
        W = Parameter(np.zeros((3, 1)), name="W")
        opt = Adam([W], lr=0.1, betas=(b1, b2))
        self._sparse_step(opt, W, [1], [[1.0]])
        m1 = opt._m[id(W)][1, 0]
        # A skipped step (no grad) still advances step_count.
        opt.zero_grad()
        opt.step()
        # Dense grad at t=3: row 1 decays b1**2 total, then folds the grad.
        opt.zero_grad()
        W.grad = np.full((3, 1), 0.5)
        opt.step()
        assert opt._m[id(W)][1, 0] == pytest.approx(b1**2 * m1 + (1 - b1) * 0.5)
        assert opt._m[id(W)][0, 0] == pytest.approx((1 - b1) * 0.5)
        np.testing.assert_array_equal(opt._last[id(W)], [3, 3, 3])

    def test_state_dict_round_trips_row_steps_through_json(self):
        batches = _partial_batches(12, steps=5)
        W, opt = _run_training(lambda ps: Adam(ps, lr=0.01), batches, dense=False, n=12)
        state = opt.state_dict()
        assert "row_steps" in state
        # Slots stay dense param-shaped arrays — the PR 2 checkpoint format.
        for buf in state["slots"].values():
            for arr in buf.values():
                assert arr.shape == W.data.shape
        # row_steps survives the checkpoint meta-JSON channel (keys become
        # strings, values plain lists).
        json_part = json.loads(json.dumps({k: v for k, v in state.items() if k != "slots"}))
        restored = dict(json_part)
        restored["slots"] = state["slots"]

        W2 = Parameter(W.data.copy(), name="emb")
        opt2 = Adam([W2], lr=0.01)
        opt2.load_state_dict(restored)
        np.testing.assert_array_equal(opt2._last[id(W2)], opt._last[id(W)])

        # Continued training is bitwise identical to the uninterrupted run.
        cont = _partial_batches(12, steps=4, seed=9)
        coef = np.random.default_rng(7).normal(size=(20, 4))[:12]
        for idx in cont:
            for p, o in ((W, opt), (W2, opt2)):
                o.zero_grad()
                out = F.take_rows(p, idx)
                F.sum(F.mul(out, F.astensor(coef[idx]))).backward()
                o.step()
        np.testing.assert_array_equal(W.data, W2.data)

    def test_legacy_state_without_row_steps_loads(self):
        W = Parameter(np.ones((4, 2)), name="W")
        opt = Adam([W], lr=0.01)
        W.grad = np.ones((4, 2))
        opt.step()
        state = opt.state_dict()
        assert "row_steps" not in state  # dense-only history stays legacy-shaped
        opt2 = Adam([Parameter(np.ones((4, 2)))], lr=0.01)
        opt2.load_state_dict(state)
        assert opt2._last == {}

    def test_row_steps_validation(self):
        W = Parameter(np.ones((4, 2)), name="W")
        opt = Adam([W], lr=0.01)
        state = opt.state_dict()
        state["row_steps"] = {"0": [1, 2]}  # wrong row count
        with pytest.raises(ValueError, match="row_steps"):
            Adam([Parameter(np.ones((4, 2)))], lr=0.01).load_state_dict(state)
        state["row_steps"] = {"5": [0, 0, 0, 0]}
        with pytest.raises(ValueError, match="indexes parameter"):
            Adam([Parameter(np.ones((4, 2)))], lr=0.01).load_state_dict(state)


# ------------------------------------------------------------ grad clipping
class TestClipGradNorm:
    def test_sparse_norm_matches_dense_with_duplicates(self):
        rng = np.random.default_rng(2)
        idx = np.array([0, 3, 0, 0, 2])
        vals = rng.normal(size=(5, 3))
        dense = _scatter_reference((6, 3), idx, vals)

        p_sparse = Parameter(np.zeros((6, 3)))
        p_sparse.grad = SparseRowGrad((6, 3), idx, vals)
        p_dense = Parameter(np.zeros((6, 3)))
        p_dense.grad = dense.copy()

        norm_s = clip_grad_norm([p_sparse], max_norm=0.5)
        norm_d = clip_grad_norm([p_dense], max_norm=0.5)
        assert norm_s == pytest.approx(norm_d, rel=1e-12)
        assert isinstance(p_sparse.grad, SparseRowGrad)
        np.testing.assert_allclose(
            p_sparse.grad.to_dense(), p_dense.grad, rtol=1e-12, atol=0
        )

    def test_no_scale_below_threshold(self):
        p = Parameter(np.zeros((4, 2)))
        p.grad = SparseRowGrad((4, 2), np.array([1]), np.full((1, 2), 0.1))
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(np.sqrt(0.02))
        np.testing.assert_array_equal(p.grad.to_dense()[1], [0.1, 0.1])
