"""Gradient and shape tests for every differentiable op.

Every op is validated against central finite differences; segment ops and
losses additionally get hand-computed cases and hypothesis properties.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Parameter, Tensor, functional as F
from repro.autograd.tensor import astensor


def numgrad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
    return g


def check_grads(make_loss, params, atol=1e-5):
    loss = make_loss()
    for p in params:
        p.grad = None
    loss.backward()
    analytic = [None if p.grad is None else p.grad.copy() for p in params]
    for k, p in enumerate(params):
        ng = numgrad(lambda: make_loss().item(), p.data)
        ag = analytic[k] if analytic[k] is not None else np.zeros_like(p.data)
        scale = max(np.abs(ng).max(), 1.0)
        np.testing.assert_allclose(ag, ng, atol=atol * scale, rtol=1e-4)


RNG = np.random.default_rng(42)


class TestArithmeticGrads:
    def test_add_broadcast(self):
        a = Parameter(RNG.normal(size=(3, 4)))
        b = Parameter(RNG.normal(size=(4,)))
        check_grads(lambda: F.sum(F.mul(F.add(a, b), F.add(a, b))), [a, b])

    def test_sub(self):
        a = Parameter(RNG.normal(size=(3,)))
        b = Parameter(RNG.normal(size=(3,)))
        check_grads(lambda: F.sum(F.mul(F.sub(a, b), F.sub(a, b))), [a, b])

    def test_mul_broadcast_scalar(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        s = Parameter(np.array(1.5))
        check_grads(lambda: F.sum(F.mul(a, s)), [a, s])

    def test_div(self):
        a = Parameter(RNG.normal(size=(3,)))
        b = Parameter(RNG.normal(size=(3,)) + 3.0)
        check_grads(lambda: F.sum(F.div(a, b)), [a, b])

    def test_neg(self):
        a = Parameter(RNG.normal(size=(3,)))
        check_grads(lambda: F.sum(F.neg(a)), [a])

    def test_power(self):
        a = Parameter(np.abs(RNG.normal(size=(3,))) + 0.5)
        check_grads(lambda: F.sum(F.power(a, 3.0)), [a])


class TestMatmulGrads:
    def test_2d_2d(self):
        a = Parameter(RNG.normal(size=(3, 4)))
        b = Parameter(RNG.normal(size=(4, 2)))
        c = Tensor(RNG.normal(size=(3, 2)))
        check_grads(lambda: F.sum(F.mul(F.matmul(a, b), c)), [a, b])

    def test_2d_1d(self):
        a = Parameter(RNG.normal(size=(3, 4)))
        v = Parameter(RNG.normal(size=(4,)))
        c = Tensor(RNG.normal(size=(3,)))
        check_grads(lambda: F.sum(F.mul(F.matmul(a, v), c)), [a, v])

    def test_1d_2d(self):
        v = Parameter(RNG.normal(size=(3,)))
        a = Parameter(RNG.normal(size=(3, 4)))
        c = Tensor(RNG.normal(size=(4,)))
        check_grads(lambda: F.sum(F.mul(F.matmul(v, a), c)), [v, a])

    def test_1d_1d(self):
        u = Parameter(RNG.normal(size=(3,)))
        v = Parameter(RNG.normal(size=(3,)))
        check_grads(lambda: F.mul(F.matmul(u, v), astensor(2.0)), [u, v])

    def test_batched(self):
        a = Parameter(RNG.normal(size=(2, 3, 4)))
        b = Parameter(RNG.normal(size=(4, 5)))
        c = Tensor(RNG.normal(size=(2, 3, 5)))
        check_grads(lambda: F.sum(F.mul(F.matmul(a, b), c)), [a, b])

    def test_batched_vector(self):
        a = Parameter(RNG.normal(size=(2, 3, 4)))
        v = Parameter(RNG.normal(size=(4,)))
        c = Tensor(RNG.normal(size=(2, 3)))
        check_grads(lambda: F.sum(F.mul(F.matmul(a, v), c)), [a, v])


class TestReducersAndShapes:
    def test_sum_all(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        check_grads(lambda: F.sum(a), [a])

    def test_sum_axis0(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        c = Tensor(RNG.normal(size=(3,)))
        check_grads(lambda: F.sum(F.mul(F.sum(a, axis=0), c)), [a])

    def test_sum_axis_keepdims(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        c = Tensor(RNG.normal(size=(2, 1)))
        check_grads(lambda: F.sum(F.mul(F.sum(a, axis=1, keepdims=True), c)), [a])

    def test_sum_negative_axis(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        c = Tensor(RNG.normal(size=(2,)))
        check_grads(lambda: F.sum(F.mul(F.sum(a, axis=-1), c)), [a])

    def test_mean(self):
        a = Parameter(RNG.normal(size=(4,)))
        check_grads(lambda: F.mean(a), [a])

    def test_mean_axis(self):
        a = Parameter(RNG.normal(size=(2, 4)))
        c = Tensor(RNG.normal(size=(2,)))
        check_grads(lambda: F.sum(F.mul(F.mean(a, axis=1), c)), [a])

    def test_reshape(self):
        a = Parameter(RNG.normal(size=(2, 6)))
        c = Tensor(RNG.normal(size=(3, 4)))
        check_grads(lambda: F.sum(F.mul(F.reshape(a, (3, 4)), c)), [a])

    def test_transpose_default(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        c = Tensor(RNG.normal(size=(3, 2)))
        check_grads(lambda: F.sum(F.mul(F.transpose(a), c)), [a])

    def test_transpose_axes(self):
        a = Parameter(RNG.normal(size=(2, 3, 4)))
        c = Tensor(RNG.normal(size=(4, 2, 3)))
        check_grads(lambda: F.sum(F.mul(F.transpose(a, (2, 0, 1)), c)), [a])

    def test_concat(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        b = Parameter(RNG.normal(size=(2, 2)))
        c = Tensor(RNG.normal(size=(2, 5)))
        check_grads(lambda: F.sum(F.mul(F.concat([a, b], axis=1), c)), [a, b])

    def test_concat_axis0(self):
        a = Parameter(RNG.normal(size=(2, 3)))
        b = Parameter(RNG.normal(size=(1, 3)))
        c = Tensor(RNG.normal(size=(3, 3)))
        check_grads(lambda: F.sum(F.mul(F.concat([a, b], axis=0), c)), [a, b])

    def test_stack(self):
        a = Parameter(RNG.normal(size=(3,)))
        b = Parameter(RNG.normal(size=(3,)))
        c = Tensor(RNG.normal(size=(2, 3)))
        check_grads(lambda: F.sum(F.mul(F.stack([a, b], axis=0), c)), [a, b])


class TestActivationGrads:
    @pytest.mark.parametrize(
        "op", ["tanh", "sigmoid", "relu", "leaky_relu", "exp", "log_sigmoid", "softplus", "abs"]
    )
    def test_unary(self, op):
        a = Parameter(RNG.normal(size=(7,)) + 0.1)  # offset avoids relu/abs kinks
        fn = getattr(F, op)
        check_grads(lambda: F.sum(fn(a)), [a])

    def test_log(self):
        a = Parameter(np.abs(RNG.normal(size=(5,))) + 0.5)
        check_grads(lambda: F.sum(F.log(a)), [a])

    def test_sqrt(self):
        a = Parameter(np.abs(RNG.normal(size=(5,))) + 0.5)
        check_grads(lambda: F.sum(F.sqrt(a)), [a])

    def test_clip_interior_gradient(self):
        a = Parameter(np.array([0.2, -0.8, 1.5]))
        F.sum(F.clip(a, -1.0, 1.0)).backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0, 0.0])

    def test_leaky_relu_slope(self):
        a = Parameter(np.array([-2.0, 2.0]))
        F.sum(F.leaky_relu(a, negative_slope=0.1)).backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_softmax_rows_sum_to_one(self):
        a = Tensor(RNG.normal(size=(4, 6)))
        out = F.softmax(a, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_grad(self):
        a = Parameter(RNG.normal(size=(3, 4)))
        c = Tensor(RNG.normal(size=(3, 4)))
        check_grads(lambda: F.sum(F.mul(F.softmax(a, axis=1), c)), [a])

    def test_sigmoid_extreme_stability(self):
        out = F.sigmoid(Tensor(np.array([-800.0, 800.0])))
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_log_sigmoid_extreme_stability(self):
        out = F.log_sigmoid(Tensor(np.array([-800.0, 800.0])))
        assert np.isfinite(out.data).all()


class TestGatherScatter:
    def test_take_rows_forward(self):
        w = Tensor(np.arange(12.0).reshape(4, 3))
        out = F.take_rows(w, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_take_rows_grad_with_duplicates(self):
        w = Parameter(RNG.normal(size=(5, 2)))
        idx = np.array([0, 0, 3])
        c = Tensor(RNG.normal(size=(3, 2)))
        check_grads(lambda: F.sum(F.mul(F.take_rows(w, idx), c)), [w])

    def test_embedding_alias(self):
        w = Parameter(np.arange(6.0).reshape(3, 2))
        out = F.embedding(w, np.array([1]))
        np.testing.assert_allclose(out.data, [[2.0, 3.0]])

    def test_take_rows_1d(self):
        w = Parameter(RNG.normal(size=(6,)))
        c = Tensor(RNG.normal(size=(3,)))
        check_grads(lambda: F.sum(F.mul(F.take_rows(w, np.array([5, 5, 1])), c)), [w])


class TestSegmentOps:
    def test_segment_sum_forward(self):
        v = Tensor(np.arange(8.0).reshape(4, 2))
        out = F.segment_sum(v, np.array([0, 2, 2, 4]))
        np.testing.assert_allclose(out.data, [[2.0, 4.0], [0.0, 0.0], [10.0, 12.0]])

    def test_segment_sum_grad(self):
        v = Parameter(RNG.normal(size=(6, 3)))
        offsets = np.array([0, 2, 2, 5, 6])
        c = Tensor(RNG.normal(size=(4, 3)))
        check_grads(lambda: F.sum(F.mul(F.segment_sum(v, offsets), c)), [v])

    def test_segment_sum_bad_offsets(self):
        v = Tensor(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            F.segment_sum(v, np.array([0, 2, 3]))  # doesn't end at 4
        with pytest.raises(ValueError):
            F.segment_sum(v, np.array([1, 2, 4]))  # doesn't start at 0
        with pytest.raises(ValueError):
            F.segment_sum(v, np.array([0, 3, 2, 4]))  # decreasing

    def test_segment_max(self):
        v = np.array([1.0, 5.0, 2.0, -1.0])
        out = F.segment_max(v, np.array([0, 2, 2, 4]))
        np.testing.assert_allclose(out, [5.0, -np.inf, 2.0])

    def test_segment_softmax_sums_to_one_per_segment(self):
        s = Tensor(RNG.normal(size=(7,)))
        offsets = np.array([0, 3, 3, 7])
        out = F.segment_softmax(s, offsets)
        np.testing.assert_allclose(out.data[:3].sum(), 1.0, atol=1e-12)
        np.testing.assert_allclose(out.data[3:].sum(), 1.0, atol=1e-12)

    def test_segment_softmax_grad(self):
        s = Parameter(RNG.normal(size=(6,)))
        offsets = np.array([0, 2, 2, 5, 6])
        c = Tensor(RNG.normal(size=(6,)))
        check_grads(lambda: F.sum(F.mul(F.segment_softmax(s, offsets), c)), [s])

    def test_segment_softmax_requires_1d(self):
        with pytest.raises(ValueError):
            F.segment_softmax(Tensor(np.zeros((2, 2))), np.array([0, 2]))

    def test_segment_softmax_stability(self):
        s = Tensor(np.array([1000.0, 1000.0, -1000.0]))
        out = F.segment_softmax(s, np.array([0, 3]))
        assert np.isfinite(out.data).all()

    def test_segment_softmax_singleton_segments(self):
        s = Tensor(np.array([5.0, -2.0]))
        out = F.segment_softmax(s, np.array([0, 1, 2]))
        np.testing.assert_allclose(out.data, [1.0, 1.0])


class TestSpmm:
    def test_spmm_matches_dense(self):
        import scipy.sparse as sp

        A = sp.random(6, 5, density=0.4, random_state=0, format="csr")
        x = Parameter(RNG.normal(size=(5, 3)))
        out = F.spmm(A, x)
        np.testing.assert_allclose(out.data, A.toarray() @ x.data)

    def test_spmm_grad(self):
        import scipy.sparse as sp

        A = sp.random(6, 5, density=0.5, random_state=1, format="csr")
        x = Parameter(RNG.normal(size=(5, 3)))
        c = Tensor(RNG.normal(size=(6, 3)))
        check_grads(lambda: F.sum(F.mul(F.spmm(A, x), c)), [x])


class TestDropout:
    def test_identity_when_not_training(self, rng):
        a = Parameter(np.ones((4, 4)))
        out = F.dropout(a, 0.5, rng, training=False)
        assert out is a

    def test_identity_when_p_zero(self, rng):
        a = Parameter(np.ones((4, 4)))
        assert F.dropout(a, 0.0, rng) is a

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Parameter(np.ones(2)), 1.0, rng)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(3)
        a = Tensor(np.ones((200, 200)))
        out = F.dropout(Parameter(a.data), 0.3, rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_grad_masked(self):
        rng = np.random.default_rng(5)
        a = Parameter(np.ones(100))
        out = F.dropout(a, 0.5, rng)
        F.sum(out).backward()
        # Gradient is zero exactly where output is zero.
        np.testing.assert_array_equal(a.grad == 0.0, out.data == 0.0)


class TestLosses:
    def test_bpr_loss_decreases_with_margin(self):
        pos = Tensor(np.array([3.0]))
        neg = Tensor(np.array([0.0]))
        loss_close = F.bpr_loss(Tensor(np.array([0.1])), neg).item()
        loss_far = F.bpr_loss(pos, neg).item()
        assert loss_far < loss_close

    def test_bpr_loss_grad(self):
        p = Parameter(RNG.normal(size=(6,)))
        n = Parameter(RNG.normal(size=(6,)))
        check_grads(lambda: F.bpr_loss(p, n), [p, n])

    def test_margin_loss_zero_when_separated(self):
        pos = Tensor(np.zeros(3))
        neg = Tensor(np.full(3, 10.0))
        assert F.margin_ranking_loss(pos, neg, 1.0).item() == 0.0

    def test_margin_loss_hinge_value(self):
        pos = Tensor(np.array([2.0]))
        neg = Tensor(np.array([1.0]))
        np.testing.assert_allclose(F.margin_ranking_loss(pos, neg, 0.5).item(), 1.5)

    def test_margin_loss_grad(self):
        p = Parameter(RNG.normal(size=(6,)))
        n = Parameter(RNG.normal(size=(6,)))
        check_grads(lambda: F.margin_ranking_loss(p, n, 1.0), [p, n])

    def test_squared_norm(self):
        a = Parameter(np.array([3.0, 4.0]))
        loss = F.squared_norm(a)
        assert loss.item() == 25.0
        loss.backward()
        np.testing.assert_allclose(a.grad, [6.0, 8.0])

    def test_l2_normalize_unit_rows(self):
        a = Tensor(RNG.normal(size=(4, 3)) * 5)
        out = F.l2_normalize(a, axis=1)
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), np.ones(4), atol=1e-6)

    def test_l2_normalize_zero_row_finite(self):
        a = Tensor(np.zeros((1, 3)))
        out = F.l2_normalize(a, axis=1)
        assert np.isfinite(out.data).all()

    def test_l2_normalize_grad(self):
        a = Parameter(RNG.normal(size=(3, 4)))
        c = Tensor(RNG.normal(size=(3, 4)))
        check_grads(lambda: F.sum(F.mul(F.l2_normalize(a, axis=1), c)), [a])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    segs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_segment_sum_matches_bincount(n, segs, seed):
    """Property: segment_sum equals a per-segment loop for random offsets."""
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.integers(0, n + 1, size=segs - 1)) if segs > 1 else np.array([], dtype=int)
    offsets = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    v = Tensor(rng.normal(size=(n, 2)))
    out = F.segment_sum(v, offsets).data
    for s in range(len(offsets) - 1):
        np.testing.assert_allclose(out[s], v.data[offsets[s] : offsets[s + 1]].sum(axis=0), atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_softmax_invariant_to_shift(seed):
    """Property: softmax(x + c) == softmax(x)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, 5))
    a = F.softmax(Tensor(x), axis=1).data
    b = F.softmax(Tensor(x + 123.4), axis=1).data
    np.testing.assert_allclose(a, b, atol=1e-10)
