"""Per-rule coverage for reprolint: each RPLxxx catches its bad pattern and
stays quiet on the corresponding good idiom, including the path-policy and
lexical (no_grad / __init__) exemptions."""

import pathlib

import pytest

from repro.analysis.lint import DEFAULT_CONFIG, LintConfig, lint_file, lint_source

# Fixtures sit under tests/, which the default policy exempts from the
# randomness rules; strict config lifts that so fixtures lint like library code.
STRICT = LintConfig(exempt_paths=())

MODEL_PATH = "src/repro/models/mod.py"
NEUTRAL_PATH = "src/repro/facility/mod.py"

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint" / "models"


def codes(source, path=MODEL_PATH, config=STRICT):
    return [f.code for f in lint_source(source, path=path, config=config)]


# ----------------------------------------------------------------- RPL001/002
class TestRandomness:
    def test_legacy_global_call_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes(src) == ["RPL001"]

    def test_global_seed_flagged(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert codes(src) == ["RPL001"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["RPL001"]

    def test_bare_reference_flagged_once(self):
        src = "import numpy as np\nshuffler = np.random.shuffle\n"
        assert codes(src) == ["RPL001"]

    def test_import_alias_resolved(self):
        src = "import numpy.random as npr\nx = npr.randint(0, 10)\n"
        assert codes(src) == ["RPL001"]

    def test_seeded_generator_methods_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.random(3)\n"
        assert codes(src) == []

    def test_exempt_path_skips_randomness_rules(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes(src, path="tests/test_mod.py", config=DEFAULT_CONFIG) == []

    def test_hardcoded_seed_in_function_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    return np.random.default_rng(0xC0FFEE).random(n)\n"
        )
        assert codes(src) == ["RPL002"]

    def test_rng_parameter_allows_seeded_construction(self):
        src = (
            "import numpy as np\n"
            "def f(n, rng):\n"
            "    return np.random.default_rng(7).random(n)\n"
        )
        assert codes(src) == []

    def test_nonconstant_seed_expression_allowed(self):
        src = (
            "import numpy as np\n"
            "def f(self, u):\n"
            "    return np.random.default_rng(self._root_seed + int(u))\n"
        )
        assert codes(src) == []

    def test_module_level_seeded_rng_allowed(self):
        # Deliberate, visible module-level tables are outside RPL002's scope.
        src = "import numpy as np\n_TABLE = np.random.default_rng(3).random(8)\n"
        assert codes(src) == []


# --------------------------------------------------------------------- RPL003
class TestWallClock:
    def test_time_time_flagged_in_models(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert codes(src) == ["RPL003"]

    def test_datetime_now_flagged(self):
        src = "import datetime\ndef f():\n    return datetime.datetime.now()\n"
        assert codes(src) == ["RPL003"]

    def test_perf_counter_allowed(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert codes(src) == []

    def test_telemetry_paths_unrestricted(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert codes(src, path="src/repro/utils/telemetry.py") == []


# --------------------------------------------------------------------- RPL004
class TestDtypeHygiene:
    def test_implicit_dtype_flagged(self):
        src = "import numpy as np\ndef f(n):\n    return np.zeros(n)\n"
        assert codes(src) == ["RPL004"]

    def test_keyword_dtype_clean(self):
        src = "import numpy as np\ndef f(n):\n    return np.zeros(n, dtype=np.float64)\n"
        assert codes(src) == []

    def test_positional_dtype_clean(self):
        src = "import numpy as np\ndef f(n):\n    return np.full(n, 0.0, np.float32)\n"
        assert codes(src) == []

    def test_like_constructors_clean(self):
        src = "import numpy as np\ndef f(x):\n    return np.zeros_like(x)\n"
        assert codes(src) == []

    def test_rule_scoped_to_dtype_paths(self):
        src = "import numpy as np\ndef f(n):\n    return np.zeros(n)\n"
        assert codes(src, path=NEUTRAL_PATH) == []

    def test_arange_flagged(self):
        src = "import numpy as np\ndef f(n):\n    return np.arange(n)\n"
        assert codes(src) == ["RPL004"]


# --------------------------------------------------------------------- RPL005
class TestNoPickle:
    def test_import_pickle_flagged(self):
        assert codes("import pickle\n") == ["RPL005"]

    def test_from_pickle_import_flagged(self):
        assert codes("from pickle import loads\n") == ["RPL005"]

    # np.save is pinned to the persistence funnel so RPL009 stays out of the
    # way and these assert RPL005 in isolation.
    def test_allow_pickle_true_flagged(self):
        src = "import numpy as np\ndef f(p, a):\n    np.save(p, a, allow_pickle=True)\n"
        assert codes(src, path="src/repro/io/mod.py") == ["RPL005"]

    def test_allow_pickle_false_clean(self):
        src = "import numpy as np\ndef f(p, a):\n    np.save(p, a, allow_pickle=False)\n"
        assert codes(src, path="src/repro/io/mod.py") == []


# --------------------------------------------------------------------- RPL006
class TestMutableDefaults:
    def test_list_default_flagged(self):
        assert codes("def f(x=[]):\n    return x\n") == ["RPL006"]

    def test_dict_kwonly_default_flagged(self):
        assert codes("def f(*, x={}):\n    return x\n") == ["RPL006"]

    def test_lambda_default_flagged(self):
        assert codes("g = lambda x=[]: x\n") == ["RPL006"]

    def test_constructor_call_default_flagged(self):
        assert codes("def f(x=dict()):\n    return x\n") == ["RPL006"]

    def test_none_default_clean(self):
        assert codes("def f(x=None):\n    return x or []\n") == []


# --------------------------------------------------------------------- RPL007
class TestTensorDataMutation:
    def test_augmented_mutation_flagged(self):
        src = "def f(t):\n    t.data += 1\n"
        assert codes(src) == ["RPL007"]

    def test_slice_assignment_flagged(self):
        src = "def f(t, a):\n    t.data[...] = a\n"
        assert codes(src) == ["RPL007"]

    def test_no_grad_block_exempt(self):
        src = (
            "from repro.autograd import no_grad\n"
            "def f(t, a):\n"
            "    with no_grad():\n"
            "        t.data[...] = a\n"
        )
        assert codes(src) == []

    def test_init_attribute_construction_exempt(self):
        src = (
            "class T:\n"
            "    def __init__(self, a):\n"
            "        self.data = a\n"
        )
        assert codes(src) == []

    def test_init_exemption_only_covers_self(self):
        src = (
            "class T:\n"
            "    def __init__(self, other, a):\n"
            "        other.data = a\n"
        )
        assert codes(src) == ["RPL007"]


# --------------------------------------------------------------------- RPL008
class TestDenseScatterGrad:
    GRAD_PATH = "src/repro/autograd/mod.py"

    def test_add_at_in_gradient_engine_flagged(self):
        src = "import numpy as np\nnp.add.at(buf, idx, grad)\n"
        assert codes(src, path=self.GRAD_PATH) == ["RPL008"]

    def test_alias_resolved(self):
        src = "import numpy\nnumpy.add.at(buf, idx, grad)\n"
        assert codes(src, path=self.GRAD_PATH) == ["RPL008"]

    def test_quiet_outside_gradient_engine(self):
        src = "import numpy as np\nnp.add.at(buf, idx, grad)\n"
        assert codes(src, path=NEUTRAL_PATH) == []
        assert codes(src, path=MODEL_PATH) == []

    def test_suppression_comment_honored(self):
        src = "import numpy as np\nnp.add.at(buf, idx, grad)  # reprolint: disable=RPL008\n"
        assert codes(src, path=self.GRAD_PATH) == []

    def test_reduceat_coalescing_clean(self):
        src = "import numpy as np\nout = np.add.reduceat(vals, starts, axis=0)\n"
        assert codes(src, path=self.GRAD_PATH) == []


# --------------------------------------------------------------------- RPL009
class TestAdHocPersistence:
    def test_savez_outside_funnel_flagged(self):
        src = "import numpy as np\nnp.savez(path, a=arr)\n"
        assert codes(src, path=NEUTRAL_PATH) == ["RPL009"]

    def test_load_outside_funnel_flagged(self):
        src = "import numpy as np\narrs = np.load(path)\n"
        assert codes(src, path=NEUTRAL_PATH) == ["RPL009"]

    def test_savez_compressed_and_save_flagged(self):
        src = (
            "import numpy as np\n"
            "np.save(path, arr)\n"
            "np.savez_compressed(path, a=arr)\n"
        )
        assert codes(src, path=NEUTRAL_PATH) == ["RPL009", "RPL009"]

    def test_alias_resolved(self):
        src = "import numpy\nnumpy.load(path)\n"
        assert codes(src, path=NEUTRAL_PATH) == ["RPL009"]

    def test_io_funnel_allowed(self):
        src = "import numpy as np\nnp.savez(path, a=arr)\nnp.load(path)\n"
        assert codes(src, path="src/repro/io/checkpoints.py") == []

    def test_store_funnel_allowed(self):
        src = "import numpy as np\nnp.save(path, arr)\nnp.load(path, mmap_mode='r')\n"
        assert codes(src, path="src/repro/store/artifacts.py") == []

    def test_memmap_family_flagged(self):
        src = (
            "import numpy as np\n"
            "buf = np.memmap(path, dtype=np.int64, mode='r')\n"
            "raw = np.fromfile(path, dtype=np.int64)\n"
        )
        assert codes(src, path=NEUTRAL_PATH) == ["RPL009", "RPL009"]

    def test_open_memmap_flagged(self):
        src = "import numpy as np\narr = np.lib.format.open_memmap(path, mode='r')\n"
        assert codes(src, path=NEUTRAL_PATH) == ["RPL009"]

    def test_memmap_family_allowed_in_funnel(self):
        src = (
            "import numpy as np\n"
            "buf = np.memmap(path, dtype=np.int64, mode='r')\n"
            "arr = np.lib.format.open_memmap(path, mode='r')\n"
        )
        assert codes(src, path="src/repro/store/artifacts.py") == []

    def test_exempt_path_skips_rule(self):
        src = "import numpy as np\nnp.load(path)\n"
        assert codes(src, path="tests/test_mod.py", config=DEFAULT_CONFIG) == []

    def test_suppression_comment_honored(self):
        src = "import numpy as np\nnp.load(path)  # reprolint: disable=RPL009\n"
        assert codes(src, path=NEUTRAL_PATH) == []

    def test_unrelated_numpy_calls_clean(self):
        src = "import numpy as np\nx = np.zeros(3, dtype=np.float64)\nnp.savetxt\n"
        assert codes(src, path=NEUTRAL_PATH) == []


# ---------------------------------------------------------------------- RPL015
class TestOptimizerFunnel:
    def test_optimizer_import_in_models_flagged(self):
        src = "from repro.autograd import Adam\n"
        assert codes(src) == ["RPL015"]

    def test_optim_module_import_flagged(self):
        src = "from repro.autograd.optim import SGD\n"
        assert codes(src) == ["RPL015"]

    def test_step_call_on_optimizer_name_flagged(self):
        src = "def f(optimizer):\n    optimizer.step()\n"
        assert codes(src) == ["RPL015"]

    def test_zero_grad_on_self_attr_flagged(self):
        src = "class M:\n    def g(self):\n        self.optim.zero_grad()\n"
        assert codes(src) == ["RPL015"]

    def test_engine_step_callable_clean(self):
        src = (
            "def extra_epoch_step(self, step, rng, config):\n"
            "    return step(lambda: self.loss(rng))\n"
        )
        assert codes(src) == []

    def test_non_optimizer_step_clean(self):
        src = "def f(scheduler):\n    scheduler.step()\n"
        assert codes(src) == []

    def test_other_autograd_imports_clean(self):
        src = "from repro.autograd import Parameter, Tensor, no_grad\n"
        assert codes(src) == []

    def test_outside_model_paths_clean(self):
        src = "from repro.autograd import Adam\ndef f(optimizer):\n    optimizer.step()\n"
        assert codes(src, path="src/repro/train/engine.py") == []

    def test_suppression_honored(self):
        src = "from repro.autograd import Adam  # reprolint: disable=RPL015\n"
        assert codes(src) == []


# ------------------------------------------------------------------- fixtures
BAD_FIXTURES = {
    "bad_randomness.py": {"RPL001", "RPL002"},
    "bad_wallclock.py": {"RPL003"},
    "bad_dtype.py": {"RPL004"},
    "bad_serialization.py": {"RPL005", "RPL009"},
    "bad_defaults.py": {"RPL006"},
    "bad_tensor_data.py": {"RPL007"},
}

GOOD_FIXTURES = [
    "good_randomness.py",
    "good_wallclock.py",
    "good_dtype.py",
    "good_tensor_data.py",
]


@pytest.mark.parametrize("name,expected", sorted(BAD_FIXTURES.items()))
def test_bad_fixture_caught(name, expected):
    found = {f.code for f in lint_file(FIXTURES / name, config=STRICT)}
    assert found == expected


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_clean(name):
    assert lint_file(FIXTURES / name, config=STRICT) == []


def test_suppressed_fixture_clean():
    assert lint_file(FIXTURES / "suppressed.py", config=STRICT) == []
