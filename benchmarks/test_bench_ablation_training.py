"""A1 ablation bench: the TransR embedding phase and attention refresh.

DESIGN.md calls out two training-schedule choices worth ablating:

1. **TransR phase (L1)** — the paper's joint objective L = L1 + L2 + reg is
   realized as alternating phases (KGAT schedule).  How much does the L1
   phase contribute?  (Run CKAT with kg_steps_per_epoch = 0 vs default.)
2. **Attention refresh** — epoch-frozen attention (default) vs uniform
   weights; batch-mode exact attention is exercised at small scale in the
   unit tests (it is ~10× slower).
"""

from conftest import write_result

from repro.experiments.runner import run_single_model
from repro.models import CKATConfig
from repro.utils.tables import TextTable


def test_ablation_training_schedule(benchmark, ooi_dataset, ablation_epochs):
    variants = [
        ("L1+L2 alternating (paper)", CKATConfig()),
        ("L2 only (no TransR phase)", CKATConfig(kg_steps_per_epoch=0)),
        ("uniform attention", CKATConfig(use_attention=False)),
    ]

    def run():
        out = {}
        for label, cfg in variants:
            out[label] = run_single_model(
                "CKAT", ooi_dataset, epochs=ablation_epochs, seed=0, ckat_config=cfg
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["training schedule", "recall@20", "ndcg@20"],
        title="A1: CKAT training-schedule ablation (OOI)",
    )
    for label, _ in variants:
        r = results[label]
        table.add_row([label, r.recall, r.ndcg])
    write_result("ablation_training", table.render())

    # Sanity only: every variant must train to a sensible model.
    for label, r in results.items():
        assert r.recall > 0.02, label
