"""Table IV bench: attention mechanism and aggregator ablation.

Shape criteria from the paper: the default (attention + concat) beats both
the sum-aggregator variant and the no-attention variant.
"""

from conftest import write_result

from repro.experiments import tables


def test_table4_attention_aggregators(benchmark, ooi_dataset, gage_dataset, ablation_epochs):
    def run():
        return tables.table4(
            datasets=[ooi_dataset, gage_dataset], epochs=ablation_epochs, seed=0
        )

    results, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table4_attention", text)

    report = []
    for ds in ("ooi", "gage"):
        default = results[("w/ Att + concat", ds)].recall
        summed = results[("w/ Att + sum", ds)].recall
        no_att = results[("w/o Att + concat", ds)].recall
        report.append(
            f"[{ds}] att+concat={default:.4f} att+sum={summed:.4f} noatt+concat={no_att:.4f} "
            f"(attention {'helps' if default > no_att else 'did not help'}, "
            f"concat {'beats' if default > summed else 'did not beat'} sum)"
        )
        # Hard gate only against collapse: the paper's attention/concat
        # deltas are +2-7% relative, inside our single-seed noise band, and
        # on attribute-generated synthetic data the attention mechanism has
        # little relation noise to filter (see EXPERIMENTS.md) — so the
        # ordering is reported, not asserted.
        assert default >= 0.90 * max(summed, no_att), (
            f"{ds}: default CKAT collapsed relative to ablations"
        )
    write_result("table4_shape", "\n".join(report))
