"""Table III bench: CKAT under different knowledge-source combinations.

Shape criteria from the paper: the full combination (UIG+UUG+LOC+DKG) is
the best of the six, and appending the MD metadata (the deliberate noise
source) does not improve on it.
"""

from conftest import write_result

from repro.experiments import tables


def test_table3_knowledge_sources(benchmark, ooi_dataset, gage_dataset, ablation_epochs):
    def run():
        return tables.table3(
            datasets=[ooi_dataset, gage_dataset], epochs=ablation_epochs, seed=0
        )

    results, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table3_knowledge_sources", text)

    report = []
    for ds in ("ooi", "gage"):
        best = results[("UIG+UUG+LOC+DKG", ds)].recall
        noisy = results[("UIG+UUG+LOC+DKG+MD", ds)].recall
        singles = {
            label: results[(label, ds)].recall
            for label in ("UIG+LOC", "UIG+DKG", "UIG+UUG")
        }
        report.append(
            f"[{ds}] full={best:.4f} +MD={noisy:.4f} "
            f"({'MD hurts' if noisy <= best else 'MD helped (deviation from paper)'}); "
            f"singles: {', '.join(f'{k}={v:.4f}' for k, v in singles.items())}"
        )
        # Hard gate: the full combination must not collapse below the single
        # sources (single-seed CKAT runs carry ±0.02 recall noise at this
        # budget, so exact ordering among the top combinations is reported,
        # not asserted — see EXPERIMENTS.md).
        assert best >= max(singles.values()) * 0.90, (
            f"{ds}: full combination collapsed relative to the best single "
            f"knowledge source — shape broken beyond noise"
        )
    write_result("table3_shape", "\n".join(report))
