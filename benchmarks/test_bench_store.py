"""Artifact-pipeline warm-vs-cold benchmark: the cache must pay for itself.

The gate: building the Table-II dataset set (OOI + GAGE at the bench scale)
through the staged pipeline with a warm artifact cache must be at least
**5× faster** than the cold build — and provably lazy: the warm pass loads
split/CKG/graph straight off the memory maps and regenerates *nothing*
(zero ``built`` in the stage counters, zero store misses, zero trace loads).
Exactness rides along: the warm arrays are bit-identical to the cold ones.

Scale knobs follow conftest (``REPRO_BENCH_SCALE``); the 5× figure targets
``full``, where trace/CKG construction dominates.  A smoke subset
(``-k smoke``) runs in seconds and is part of ``make verify``.
"""

import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json, write_result

from repro.kg.subgraphs import KnowledgeSources
from repro.pipeline import PIPELINE_STAGES, DatasetPipeline

DATASETS = ("ooi", "gage")
SOURCES = KnowledgeSources.best()
MIN_SPEEDUP = 5.0


def _build_all(cache_dir, scale):
    """One full table2-style dataset pass; returns (seconds, pipelines)."""
    pipes = []
    start = time.perf_counter()
    for name in DATASETS:
        pipe = DatasetPipeline(name, scale=scale, seed=BENCH_SEED, cache_dir=cache_dir)
        pipe.split()
        pipe.graph(SOURCES)
        pipes.append(pipe)
    return time.perf_counter() - start, pipes


def _graph_digests(pipes):
    out = {}
    for pipe in pipes:
        arrays, _ = pipe.graph(SOURCES).to_arrays()
        out[pipe.name] = {k: np.asarray(v).tobytes() for k, v in arrays.items()}
    return out


def test_warm_pipeline_speedup(tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("store-bench"))
    cold_seconds, cold_pipes = _build_all(cache, BENCH_SCALE)
    warm_seconds, warm_pipes = _build_all(cache, BENCH_SCALE)
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    # Zero regeneration: all warm stages are mmap loads, no misses, and the
    # Merkle key chain means the trace is never even read back.
    for pipe in warm_pipes:
        counts = pipe.stage_counters()
        assert all(counts[s]["built"] == 0 for s in PIPELINE_STAGES), counts
        assert counts["trace"]["loaded"] == 0
        assert pipe.store.stats()["misses"] == 0

    # Bit-identity: the cache changes wall-clock, never results.
    cold_digests, warm_digests = _graph_digests(cold_pipes), _graph_digests(warm_pipes)
    for name in DATASETS:
        assert cold_digests[name] == warm_digests[name]

    write_result(
        "store_pipeline",
        "Artifact pipeline, table2 dataset set "
        f"({'+'.join(DATASETS)}, scale={BENCH_SCALE})\n"
        f"  cold build : {cold_seconds * 1000:8.1f} ms\n"
        f"  warm build : {warm_seconds * 1000:8.1f} ms\n"
        f"  speedup    : {speedup:8.1f}x  (gate: >= {MIN_SPEEDUP}x)",
    )
    write_bench_json(
        "store",
        {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "gate": MIN_SPEEDUP,
            "datasets": list(DATASETS),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm pipeline build only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s); gate is {MIN_SPEEDUP}x"
    )


def test_store_smoke(tmp_path):
    """Fast correctness pass (small scale, one dataset) for ``make verify``."""
    cache = str(tmp_path / "cache")
    cold = DatasetPipeline("ooi", scale="small", seed=BENCH_SEED, cache_dir=cache)
    cold.graph(SOURCES)
    assert all(cold.stage_counters()[s]["built"] == 1 for s in PIPELINE_STAGES)

    warm = DatasetPipeline("ooi", scale="small", seed=BENCH_SEED, cache_dir=cache)
    warm.graph(SOURCES)
    counts = warm.stage_counters()
    assert all(counts[s]["built"] == 0 for s in PIPELINE_STAGES)
    assert counts["trace"]["loaded"] == 0 and counts["graph"]["loaded"] == 1
    assert warm.store.stats() == {"hits": 1, "misses": 0, "builds": 0, "evictions": 0}

    c_arrays, c_meta = cold.graph(SOURCES).to_arrays()
    w_arrays, w_meta = warm.graph(SOURCES).to_arrays()
    assert c_meta == w_meta
    for name in c_arrays:
        np.testing.assert_array_equal(np.asarray(c_arrays[name]), np.asarray(w_arrays[name]))
