"""The fused-kernel gate: one full CKAT training epoch, fused vs oracle.

This is the headline number for the cache-blocked kernel work
(``src/repro/kernels/``): a complete CKAT epoch at table-2 scale — the
TransR phase (10 steps x batch 2048 over the propagation store) plus the
BPR phase (14 minibatches of 512 with full batch-mode attention and
propagation) — must run at least **2x faster** with the fused kernels than
with the per-op oracle chains, *and* land on the same trained parameters.

Both backends train from the same seed on the same machine in the same
process; timings are the median of three interleaved repetitions so the
gate doesn't flap on allocator warm-up or scheduler noise.  Parameter
agreement is asserted with ``rtol=1e-9, atol=1e-12``: the entity table is
bit-identical in practice (the attention/propagation kernels reassociate
nothing — same matmul shapes, same reduction orders; see DESIGN.md §10),
while the relation-grouped TransR backward sums batch rows per relation
group instead of in sample order, which moves individual ``proj`` entries
by ~1 ulp (observed max |Δ| ≈ 2e-16).  The ``atol`` covers exactly that
reassociation floor; ``rtol`` covers BLAS-build portability.
"""

import statistics
import time

import numpy as np

from conftest import BENCH_SEED, write_bench_json, write_result

from repro.experiments.runner import build_model, default_fit_config
from repro.kernels import dispatch
from repro.kg import KnowledgeSources
from repro.models import CKATConfig

GATE = 2.0
REPEATS = 3
PARITY_RTOL = 1e-9
PARITY_ATOL = 1e-12

_CONFIG = CKATConfig(attention_mode="batch")


def _train_epoch(ooi_dataset, ckg, graph, backend):
    """Build a fresh CKAT from BENCH_SEED and train one epoch under ``backend``."""
    model = build_model(
        "CKAT", ooi_dataset, ckg, seed=BENCH_SEED, ckat_config=_CONFIG, graph=graph
    )
    fit_cfg = default_fit_config("CKAT", epochs=1, seed=BENCH_SEED)
    with dispatch.kernel_backend(backend):
        t0 = time.perf_counter()
        model.fit(ooi_dataset.split.train, fit_cfg)
        elapsed = time.perf_counter() - t0
    return elapsed, model


def _param_tables(model):
    tr = model.transr
    return {
        "entity_emb": tr.entity_emb.data,
        "relation_emb": tr.relation_emb.data,
        "proj": tr.proj.data,
    }


def test_fused_epoch_speedup(ooi_dataset):
    """Fused kernels ≥2x faster than the oracle chains on a full CKAT epoch."""
    ckg = ooi_dataset.build_ckg(KnowledgeSources.best())
    graph = ooi_dataset.prepared_graph(KnowledgeSources.best())

    # Untimed warm-up per backend: page in the dataset, the adjacency caches
    # and the BLAS threads so neither timed side pays the cold start.
    _train_epoch(ooi_dataset, ckg, graph, "oracle")
    _train_epoch(ooi_dataset, ckg, graph, "numpy")

    times = {"oracle": [], "numpy": []}
    models = {}
    for _ in range(REPEATS):  # interleaved so machine drift hits both sides
        for backend in ("oracle", "numpy"):
            elapsed, model = _train_epoch(ooi_dataset, ckg, graph, backend)
            times[backend].append(elapsed)
            models[backend] = model

    t_oracle = statistics.median(times["oracle"])
    t_fused = statistics.median(times["numpy"])
    speedup = t_oracle / t_fused

    # Same seed, same machine → the two trajectories must coincide.  The
    # attention/propagation kernels preserve every reduction order (entity
    # table bit-exact in practice); the relation-grouped TransR backward
    # reassociates the per-relation sums, so atol absorbs the ~1-ulp floor.
    drift = {}
    oracle_tables = _param_tables(models["oracle"])
    fused_tables = _param_tables(models["numpy"])
    for name, ref in oracle_tables.items():
        got = fused_tables[name]
        np.testing.assert_allclose(got, ref, rtol=PARITY_RTOL, atol=PARITY_ATOL)
        denom = max(float(np.abs(ref).max()), 1e-30)
        drift[name] = float(np.abs(got - ref).max()) / denom

    checksum = float(np.abs(oracle_tables["entity_emb"]).sum())
    write_result(
        "bench_kernels_fused_epoch",
        "CKAT full training epoch (table-2 scale, batch attention), fused vs oracle\n"
        f"  oracle per-op chains : {t_oracle * 1e3:8.1f} ms  (median of {REPEATS})\n"
        f"  fused kernels        : {t_fused * 1e3:8.1f} ms  ({speedup:.2f}x, gate >= {GATE}x)\n"
        f"  trained-param drift  : "
        + ", ".join(f"{k}={v:.1e}" for k, v in sorted(drift.items()))
        + f"\n  entity-table |.|-sum : {checksum:.11f}",
    )
    write_bench_json(
        "kernels",
        {
            "oracle_seconds": t_oracle,
            "fused_seconds": t_fused,
            "oracle_seconds_all": times["oracle"],
            "fused_seconds_all": times["numpy"],
            "speedup": speedup,
            "gate": GATE,
            "backend": "numpy",
            "parity_rtol": PARITY_RTOL,
            "parity_atol": PARITY_ATOL,
            "max_relative_drift": max(drift.values()),
            "entity_abs_sum": checksum,
        },
    )
    assert speedup >= GATE, (
        f"fused epoch only {speedup:.2f}x faster than oracle "
        f"({t_fused:.3f}s vs {t_oracle:.3f}s); gate is {GATE}x"
    )
