"""Figure 3 bench: per-user query-distribution curves.

Shape criteria: the curves are heavy-tailed (orders-of-magnitude spread,
high Gini) and monotone when sorted by activity — the qualitative signature
of the paper's Fig 3 panels.
"""

import numpy as np
from conftest import write_result

from repro.experiments import figures


def test_figure3_distributions(benchmark, ooi_dataset, gage_dataset):
    def run():
        return figures.figure3([ooi_dataset, gage_dataset])

    dists, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig3_distributions", text)

    for name, d in dists.items():
        s = d.summary()
        # Heavy tail: the busiest user queries far more objects than the median.
        assert s["max_objects"] > 3 * max(s["median_objects"], 1), name
        # Substantial inequality in query volume.
        assert s["query_gini"] > 0.3, name
        # Sorted by activity.
        assert (np.diff(d.total_queries) <= 0).all(), name
