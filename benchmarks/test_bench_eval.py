"""Evaluation-pipeline micro-benchmarks.

Three questions, answered on a synthetic dataset big enough to expose the
asymptotics (2k+ users):

1. How much faster is the loop-free evaluator than the legacy per-user-loop
   path?  (``test_vectorized_speedup`` asserts ≥ 3×, and the pytest-benchmark
   cases track both paths' absolute times.)
2. Does float32 scoring help?  (Tracked; correctness is asserted against
   float64 on tie-free scores.)
3. Is process-sharded evaluation exactly the serial reference?  (Asserted
   bit-for-bit with 2 workers.)

Run with ``pytest benchmarks/test_bench_eval.py --benchmark-only`` for the
tracked numbers; the speedup/exactness assertions also run in plain mode.
"""

import time

import numpy as np
import pytest

from conftest import write_bench_json, write_result

from repro.data.interactions import InteractionDataset
from repro.eval.evaluator import RankingEvaluator
from repro.eval.sharded import sharded_evaluate
from repro.parallel.executor import ProcessExecutor, SerialExecutor

N_USERS = 2048
N_ITEMS = 1200
TRAIN_PER_USER = 30
TEST_PER_USER = 8
DIM = 32


class MatrixScorer:
    """Picklable factorized scorer: scores = U[users] @ V.T."""

    def __init__(self, U: np.ndarray, V: np.ndarray):
        self.U = U
        self.V = V

    def __call__(self, users: np.ndarray) -> np.ndarray:
        return self.U[users] @ self.V.T


def _synthetic_eval_problem(seed=0):
    """A ≥2k-user train/test pair plus a deterministic scorer."""
    rng = np.random.default_rng(seed)
    train_u = np.repeat(np.arange(N_USERS), TRAIN_PER_USER)
    train_i = rng.integers(0, N_ITEMS, size=train_u.size)
    test_u = np.repeat(np.arange(N_USERS), TEST_PER_USER)
    test_i = rng.integers(0, N_ITEMS, size=test_u.size)
    train = InteractionDataset(train_u, train_i, N_USERS, N_ITEMS)
    test = InteractionDataset(test_u, test_i, N_USERS, N_ITEMS)
    scorer = MatrixScorer(rng.normal(size=(N_USERS, DIM)), rng.normal(size=(N_ITEMS, DIM)))
    return train, test, scorer


@pytest.fixture(scope="module")
def eval_problem():
    return _synthetic_eval_problem()


def _best_of(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_vectorized_speedup(eval_problem):
    """The loop-free path must beat the legacy per-user loop by ≥ 3×."""
    train, test, scorer = eval_problem
    ev = RankingEvaluator(train, test, k=20)
    t_legacy, legacy = _best_of(lambda: ev.evaluate_legacy(scorer), repeats=2)
    t_fast, fast = _best_of(lambda: ev.evaluate(scorer), repeats=3)
    ev32 = RankingEvaluator(train, test, k=20, score_dtype=np.float32)
    t_f32, fast32 = _best_of(lambda: ev32.evaluate(scorer), repeats=3)
    assert abs(fast.recall - legacy.recall) < 1e-12
    assert abs(fast.ndcg - legacy.ndcg) < 1e-12
    assert fast.num_users == legacy.num_users
    speedup = t_legacy / t_fast
    write_result(
        "bench_eval_vectorized",
        f"full-ranking evaluation, {N_USERS} users x {N_ITEMS} items, k=20\n"
        f"  legacy per-user loop : {t_legacy * 1e3:8.1f} ms\n"
        f"  vectorized (float64) : {t_fast * 1e3:8.1f} ms  ({speedup:.1f}x)\n"
        f"  vectorized (float32) : {t_f32 * 1e3:8.1f} ms  ({t_legacy / t_f32:.1f}x)\n"
        f"  recall@20={fast.recall:.4f} ndcg@20={fast.ndcg:.4f} "
        f"(float32 recall drift {abs(fast32.recall - fast.recall):.2e})",
    )
    write_bench_json(
        "eval",
        {
            "legacy_seconds": t_legacy,
            "fast_seconds": t_fast,
            "fast_float32_seconds": t_f32,
            "speedup": speedup,
            "gate": 3.0,
            "users": N_USERS,
            "items": N_ITEMS,
        },
    )
    assert speedup >= 3.0, f"vectorized path only {speedup:.2f}x faster than legacy"


def test_sharded_matches_serial_exactly(eval_problem):
    """2-worker process-sharded evaluation == serial reference, bit-for-bit."""
    train, test, scorer = eval_problem
    ev = RankingEvaluator(train, test, k=20)
    serial = ev.evaluate(scorer)
    sharded_ref = sharded_evaluate(ev, scorer, num_shards=4, executor=SerialExecutor())
    with ProcessExecutor(max_workers=2) as pool:
        sharded = sharded_evaluate(ev, scorer, num_shards=4, executor=pool)
    assert sharded_ref == serial
    assert sharded == serial
    write_result(
        "bench_eval_sharded",
        f"sharded evaluation, {N_USERS} users, 4 shards / 2 workers\n"
        f"  serial : {serial}\n"
        f"  sharded: {sharded}\n"
        "  exact match: True",
    )


def test_bench_eval_legacy(benchmark, eval_problem):
    train, test, scorer = eval_problem
    ev = RankingEvaluator(train, test, k=20)
    result = benchmark(ev.evaluate_legacy, scorer)
    assert result.num_users == N_USERS


def test_bench_eval_vectorized(benchmark, eval_problem):
    train, test, scorer = eval_problem
    ev = RankingEvaluator(train, test, k=20)
    result = benchmark(ev.evaluate, scorer)
    assert result.num_users == N_USERS


def test_bench_eval_vectorized_float32(benchmark, eval_problem):
    train, test, scorer = eval_problem
    ev = RankingEvaluator(train, test, k=20, score_dtype=np.float32)
    result = benchmark(ev.evaluate, scorer)
    assert result.num_users == N_USERS
