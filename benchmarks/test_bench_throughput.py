"""Micro-benchmarks: training and inference throughput of the hot paths.

These use pytest-benchmark's statistics properly (multiple rounds) since a
single step is fast: one CKAT BPR step (full-graph propagation forward +
backward), one TransR phase step, attention refresh, full-catalog scoring,
and the full-ranking evaluation protocol (vectorized fast path, float64 and
float32 buffers).  Useful for tracking performance regressions in the
autograd engine, the sparse propagation path, and the evaluation pipeline.
"""

import numpy as np
import pytest

from repro.data.sampling import BPRSampler
from repro.eval.evaluator import RankingEvaluator
from repro.kg import KnowledgeSources
from repro.models import CKAT, CKATConfig


@pytest.fixture(scope="module")
def ckat_setup(ooi_dataset):
    ckg = ooi_dataset.build_ckg(KnowledgeSources.best())
    train = ooi_dataset.split.train
    model = CKAT(train.num_users, train.num_items, ckg, CKATConfig(), seed=0)
    sampler = BPRSampler(train)
    rng = np.random.default_rng(0)
    users, pos, neg = sampler.sample_batch(512, rng)
    return model, users, pos, neg, rng


def test_ckat_bpr_step(benchmark, ckat_setup):
    model, users, pos, neg, rng = ckat_setup

    def step():
        loss = model.batch_loss(users, pos, neg, rng)
        loss.backward()
        for p in model.parameters():
            p.grad = None
        return loss.item()

    value = benchmark(step)
    assert np.isfinite(value)


def test_ckat_transr_step(benchmark, ckat_setup):
    model, _, _, _, rng = ckat_setup
    store = model.ckg.propagation_store

    def step():
        h, r, t = model.transr.sample_triples(store, 2048, rng)
        loss = model.transr.margin_loss(h, r, t, rng)
        loss.backward()
        for p in model.transr.parameters():
            p.grad = None
        return loss.item()

    value = benchmark(step)
    assert np.isfinite(value)


def test_ckat_attention_refresh(benchmark, ckat_setup):
    model = ckat_setup[0]
    benchmark(model.refresh_attention)
    assert np.isfinite(model._edge_weights).all()


def test_ckat_full_catalog_scoring(benchmark, ckat_setup, ooi_dataset):
    model = ckat_setup[0]
    users = np.arange(min(128, ooi_dataset.split.train.num_users))

    scores = benchmark(model.score_users, users)
    assert scores.shape == (len(users), ooi_dataset.split.train.num_items)


def test_full_ranking_evaluation(benchmark, ckat_setup, ooi_dataset):
    """End-to-end top-K protocol on the vectorized fast path (float64)."""
    model = ckat_setup[0]
    ev = RankingEvaluator(ooi_dataset.split.train, ooi_dataset.split.test, k=20)

    result = benchmark(ev.evaluate, model.score_users)
    assert result.num_users > 0


def test_full_ranking_evaluation_float32(benchmark, ckat_setup, ooi_dataset):
    """Same protocol with the float32 score buffer."""
    model = ckat_setup[0]
    ev = RankingEvaluator(
        ooi_dataset.split.train, ooi_dataset.split.test, k=20, score_dtype=np.float32
    )

    result = benchmark(ev.evaluate, model.score_users)
    assert result.num_users > 0
