"""Figure 4 bench: t-SNE of heavy users' queried data objects.

Shape criterion: same-organization users' point clouds overlap (low user
separability) while users from different organizations separate — the
paper's evidence that research groups share query patterns.
"""

from conftest import write_result

from repro.experiments import figures


def test_figure4_tsne(benchmark, ooi_dataset):
    def run():
        return figures.figure4(ooi_dataset, num_heavy_users=8, seed=0)

    embeddings, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig4_tsne", text)

    same = embeddings["same_org"].user_separability()
    cross = embeddings["cross_org"].user_separability()
    # Same-org users should be clearly less separable than cross-org users.
    assert same < cross, (
        f"same-org separability {same:.3f} should be below cross-org {cross:.3f}"
    )
