"""Shared benchmark fixtures.

Scale knobs (environment variables):

- ``REPRO_BENCH_SCALE``  — ``full`` (default) or ``small``; controls dataset size.
- ``REPRO_BENCH_EPOCHS`` — training epochs per model run (default 30 full /
  6 small).  Raise for tighter reproduction of the tables, lower for smoke.

Each bench writes its rendered table to ``benchmarks/results/<name>.txt`` in
addition to printing it, so the paper-vs-measured comparison survives the
pytest run.
"""

import json
import os
import pathlib
import platform

import pytest

from repro.experiments.datasets import load_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
# None → per-model default budgets (Section VI-D); an integer overrides all.
_epochs_env = os.environ.get("REPRO_BENCH_EPOCHS", "")
BENCH_EPOCHS = int(_epochs_env) if _epochs_env else (None if BENCH_SCALE == "full" else 6)
# Ablation tables (III-V) retrain CKAT many times; they use a reduced budget
# unless REPRO_BENCH_EPOCHS overrides it.
ABLATION_EPOCHS = BENCH_EPOCHS if BENCH_EPOCHS is not None else (30 if BENCH_SCALE == "full" else 6)
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def write_bench_json(name: str, payload: dict) -> None:
    """Persist machine-readable benchmark numbers as ``BENCH_<name>.json``.

    The rendered ``.txt`` tables are for humans; these JSON files carry the
    raw timings/speedup ratios plus the run conditions (scale, seed,
    platform) so regression tooling can diff runs without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "name": name,
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "platform": platform.platform(),
        "python": platform.python_version(),
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def ooi_dataset():
    return load_dataset("ooi", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def gage_dataset():
    return load_dataset("gage", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_epochs():
    return BENCH_EPOCHS


@pytest.fixture(scope="session")
def ablation_epochs():
    return ABLATION_EPOCHS
