"""Million-user out-of-core pipeline benchmark: peak memory is the gate.

The full run pushes 10⁶ users / ~1.9·10⁷ trace records / ~1.4·10⁷
interactions through the streamed dataset path — blocked trace generation →
chunked dedup/k-core → blocked split → one BPRMF epoch on the shard-blocked
sampler → sharded ranking evaluation — inside a **subprocess**, so the
asserted ``ru_maxrss`` is the high-water mark of exactly that pipeline.

Two asserted bounds make the claim falsifiable in both directions:

- measured peak RSS stays under a ceiling (calibrated ~3× above the
  measured ~1.3 GB), and
- the *arithmetic lower bound* of the monolithic path (the M×N float64
  mixture fan-out plus the three full trace arrays — ~25 GB at 10⁶ users)
  exceeds that same ceiling, so the monolithic generator provably could not
  have produced this run inside the budget.

The smoke subset (``-k smoke``, part of ``make verify``) runs the same
driver at 3·10⁴ users in seconds with proportionally scaled bounds.
"""

import json
import os
import pathlib
import subprocess
import sys

from conftest import BENCH_SCALE, write_bench_json, write_result

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

# (num_users, rss_ceiling_mb): the ceiling must sit between the measured
# peak (~1286 MB full / ~226 MB smoke) and the monolithic arithmetic lower
# bound (~25.5 GB full / ~765 MB smoke).
FULL_USERS, FULL_CEILING_MB = 1_000_000, 4096
SMALL_USERS, SMALL_CEILING_MB = 100_000, 1536
SMOKE_USERS, SMOKE_CEILING_MB = 30_000, 512

MIN_FULL_INTERACTIONS = 10_000_000


def _run_scale(num_users, cache_dir, eval_users=20_000):
    """Drive ``python -m repro.experiments.scale`` in a fresh subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments.scale",
            "--num-users",
            str(num_users),
            "--eval-users",
            str(eval_users),
            "--cache-dir",
            str(cache_dir),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def _check_bounds(stats, ceiling_mb):
    assert stats["peak_rss_mb"] <= ceiling_mb, (
        f"streamed pipeline peaked at {stats['peak_rss_mb']} MB, "
        f"over the {ceiling_mb} MB ceiling"
    )
    assert stats["monolithic_lower_bound_mb"] > ceiling_mb, (
        "ceiling is not discriminating: the monolithic path's arithmetic "
        f"floor ({stats['monolithic_lower_bound_mb']} MB) fits under it"
    )


def test_scale_out_of_core(tmp_path_factory):
    users, ceiling = (
        (FULL_USERS, FULL_CEILING_MB) if BENCH_SCALE == "full" else (SMALL_USERS, SMALL_CEILING_MB)
    )
    cache = tmp_path_factory.mktemp("scale-bench")
    stats = _run_scale(users, cache)

    assert stats["recipe"]["num_users"] == users
    if BENCH_SCALE == "full":
        assert stats["num_records"] >= MIN_FULL_INTERACTIONS
        assert stats["num_interactions"] >= MIN_FULL_INTERACTIONS
    _check_bounds(stats, ceiling)

    write_result(
        "scale",
        f"Out-of-core dataset pipeline, {users:,} users (scale={BENCH_SCALE})\n"
        f"  trace records   : {stats['num_records']:>12,}\n"
        f"  interactions    : {stats['num_interactions']:>12,}\n"
        f"  total wall      : {stats['total_seconds']:>9.1f} s\n"
        f"  peak RSS        : {stats['peak_rss_mb']:>9.1f} MB  (ceiling {ceiling} MB)\n"
        f"  monolithic floor: {stats['monolithic_lower_bound_mb']:>9.1f} MB",
    )
    write_bench_json(
        "scale",
        {
            "num_users": users,
            "rss_ceiling_mb": ceiling,
            **{
                k: stats[k]
                for k in (
                    "num_records",
                    "num_interactions",
                    "total_seconds",
                    "peak_rss_mb",
                    "monolithic_lower_bound_mb",
                    "phases",
                    "metrics",
                )
            },
        },
    )


def test_scale_smoke(tmp_path):
    stats = _run_scale(SMOKE_USERS, tmp_path / "cache", eval_users=2_000)
    assert stats["num_interactions"] > 0
    _check_bounds(stats, SMOKE_CEILING_MB)
    # A warm rerun reads the persisted blocks instead of regenerating and
    # reproduces the exact numbers — the store round-trip is bit-safe.
    again = _run_scale(SMOKE_USERS, tmp_path / "cache", eval_users=2_000)
    assert again["phases"]["trace_stream"]["warm"]
    assert again["num_interactions"] == stats["num_interactions"]
    assert again["metrics"] == stats["metrics"]
