"""Figure 5 bench: same-city vs random user-pair query-pattern probability.

Shape criteria: same-city pairs are many-fold likelier to share an
instrument-locality pattern and a data-type pattern than random pairs
(ratios ≫ 1), and the Section III-B2 concentration statistics land near the
published numbers (43.1%/51.6% OOI, 36.3%/68.8% GAGE) at full scale.
"""

from conftest import BENCH_SCALE, write_result

from repro.analysis import query_concentration
from repro.experiments import figures


def test_figure5_locality(benchmark, ooi_dataset, gage_dataset):
    def run():
        return figures.figure5([ooi_dataset, gage_dataset], num_pairs=10_000, seed=0)

    results, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig5_locality", text)

    for name, r in results.items():
        assert r.region_ratio > 1.5, f"{name}: same-city locality signal missing"
        assert r.dtype_ratio > 1.5, f"{name}: same-city domain signal missing"
        assert r.p_region_same_city > r.p_region_random
        assert r.p_dtype_same_city > r.p_dtype_random

    if BENCH_SCALE == "full":
        conc_ooi = query_concentration(ooi_dataset.trace, ooi_dataset.catalog)
        conc_gage = query_concentration(gage_dataset.trace, gage_dataset.catalog)
        # Calibration band: within ±0.08 of the published fractions.
        assert abs(conc_ooi["same_region_fraction"] - 0.431) < 0.08
        assert abs(conc_ooi["same_dtype_fraction"] - 0.516) < 0.08
        assert abs(conc_gage["same_region_fraction"] - 0.363) < 0.08
        assert abs(conc_gage["same_dtype_fraction"] - 0.688) < 0.08
