"""Data-parallel training benchmark: ≥2x epoch speedup is the gate.

Trains BPRMF and TransR through :class:`~repro.train.TrainEngine` twice —
once with :class:`~repro.train.SerialExecutor`, once with
:class:`~repro.train.ShardedExecutor` over fork workers and mmap'd shared
parameter segments — on the same shard-addressable sampler, and asserts the
parallel run finishes its epochs at least ``SPEEDUP_FLOOR``× faster.  The
timed window includes executor setup (fork + segment arena), so the gate is
conservative: the speedup is what a caller of ``repro train --workers N``
actually observes.

Speed is necessary but not sufficient — each timed run is paired with a
:func:`~repro.train.gradient_agreement_report` check that the distributed
first-round gradient matches a serial reduction of the identical batches to
within the documented tolerance (DESIGN §14: summation reassociation is the
only permitted divergence).

Dataset sizes reuse the tiers of ``test_bench_scale.py``: the default
(``full``) run trains at that file's 1e5-user tier, ``REPRO_BENCH_SCALE=small``
at its 3e4-user smoke tier.  The speedup tests skip on machines with fewer
than four cores — a fork pool cannot demonstrate parallel speedup without
parallel hardware — but the smoke subset (``-k "not speedup"``, wired into
``make verify`` as ``train-parallel-smoke``) runs everywhere: fork-vs-inline
loss identity plus both agreement gates, and it still emits
``BENCH_parallel.json`` so CI always uploads an artifact.
"""

import os
import time

import numpy as np
import pytest
from conftest import BENCH_SCALE, write_bench_json, write_result

from repro.data.interactions import InteractionDataset
from repro.data.sampling import ShardedBPRSampler
from repro.models import BPRMF
from repro.models.base import FitConfig
from repro.train import (
    SerialExecutor,
    ShardedExecutor,
    TrainEngine,
    TransRObjective,
    TripleShardSampler,
    gradient_agreement_report,
)
from repro.train.agreement import DEFAULT_TOLERANCE
from repro.utils.tables import TextTable

WORKERS = 4
CORES = os.cpu_count() or 1
SPEEDUP_FLOOR = 2.0

needs_cores = pytest.mark.skipif(
    CORES < WORKERS,
    reason=f"speedup gate needs >= {WORKERS} cores, have {CORES}",
)

# (num_users, num_items, interactions, epochs) per scale tier; user counts
# match test_bench_scale.py's SMALL/SMOKE tiers.
if BENCH_SCALE == "full":
    BPR_USERS, BPR_ITEMS, BPR_N, BPR_EPOCHS = 100_000, 20_000, 2_000_000, 3
    KG_ENTITIES, KG_RELATIONS, KG_TRIPLES, KG_EPOCHS = 50_000, 8, 500_000, 3
else:
    BPR_USERS, BPR_ITEMS, BPR_N, BPR_EPOCHS = 30_000, 6_000, 600_000, 2
    KG_ENTITIES, KG_RELATIONS, KG_TRIPLES, KG_EPOCHS = 15_000, 8, 150_000, 2

BPR_DIM, BPR_BATCH = 64, 8192
KG_ENT_DIM, KG_REL_DIM, KG_BATCH = 64, 32, 4096

# One JSON artifact accumulates across the tests of this module; each test
# rewrites the file so a partial (smoke-only) run still leaves a valid doc.
_RESULTS: dict = {"workers": WORKERS, "cores": CORES, "tolerance": DEFAULT_TOLERANCE}


def _flush():
    write_bench_json("parallel", _RESULTS)


def _interactions(num_users, num_items, n, seed=0):
    rng = np.random.default_rng(seed)
    return InteractionDataset(
        rng.integers(0, num_users, n),
        rng.integers(0, num_items, n),
        num_users=num_users,
        num_items=num_items,
    )


def _triples(num_entities, num_relations, n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, num_entities, n),
        rng.integers(0, num_relations, n),
        rng.integers(0, num_entities, n),
    )


def _timed_fit(model, sampler, cfg, executor, data=None):
    start = time.perf_counter()
    result = TrainEngine(model, executor=executor).fit(data, cfg, sampler=sampler)
    return time.perf_counter() - start, result


def _speedup_row(name, serial_s, parallel_s, epochs, agreement):
    speedup = serial_s / parallel_s
    _RESULTS[name] = {
        "epochs": epochs,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "serial_epoch_seconds": round(serial_s / epochs, 3),
        "parallel_epoch_seconds": round(parallel_s / epochs, 3),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "agreement_max_rel_diff": agreement["max_rel_diff"],
    }
    _flush()
    return speedup


def _render_table():
    table = TextTable(
        ["model", "epochs", "serial s", f"{WORKERS}-worker s", "speedup", "grad rel diff"],
        title=f"Data-parallel training, {WORKERS} workers on {CORES} cores (scale={BENCH_SCALE})",
        float_digits=2,
    )
    for name in ("bprmf", "transr"):
        if name in _RESULTS:
            row = _RESULTS[name]
            table.add_row(
                [
                    name,
                    row["epochs"],
                    row["serial_seconds"],
                    row["parallel_seconds"],
                    f"{row['speedup']:.2f}x",
                    f"{row['agreement_max_rel_diff']:.1e}",
                ]
            )
    write_result("parallel", table.render())


@needs_cores
def test_bprmf_epoch_speedup():
    data = _interactions(BPR_USERS, BPR_ITEMS, BPR_N)
    shards = 2 * WORKERS
    sampler = ShardedBPRSampler(data, users_per_shard=-(-BPR_USERS // shards))
    cfg = FitConfig(epochs=BPR_EPOCHS, batch_size=BPR_BATCH, seed=3)

    agreement = gradient_agreement_report(
        lambda: BPRMF(BPR_USERS, BPR_ITEMS, dim=BPR_DIM, seed=1),
        sampler,
        cfg,
        workers=WORKERS,
    )
    assert agreement["within_tolerance"], agreement

    serial_s, rs = _timed_fit(
        BPRMF(BPR_USERS, BPR_ITEMS, dim=BPR_DIM, seed=1), sampler, cfg, SerialExecutor(), data
    )
    parallel_s, rp = _timed_fit(
        BPRMF(BPR_USERS, BPR_ITEMS, dim=BPR_DIM, seed=1),
        sampler,
        cfg,
        ShardedExecutor(WORKERS),
        data,
    )
    assert np.isfinite(rp.losses).all() and rp.losses[-1] < rp.losses[0]
    assert np.isfinite(rs.losses).all()

    speedup = _speedup_row("bprmf", serial_s, parallel_s, BPR_EPOCHS, agreement)
    _render_table()
    assert speedup >= SPEEDUP_FLOOR, (
        f"BPRMF {WORKERS}-worker epochs only {speedup:.2f}x faster than serial "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s); gate is {SPEEDUP_FLOOR}x"
    )


@needs_cores
def test_transr_epoch_speedup():
    h, r, t = _triples(KG_ENTITIES, KG_RELATIONS, KG_TRIPLES)
    shards = 2 * WORKERS
    sampler = TripleShardSampler(h, r, t, rows_per_shard=-(-KG_TRIPLES // shards))
    cfg = FitConfig(epochs=KG_EPOCHS, batch_size=KG_BATCH, seed=3)

    def make():
        return TransRObjective(
            KG_ENTITIES, KG_RELATIONS, entity_dim=KG_ENT_DIM, relation_dim=KG_REL_DIM, seed=1
        )

    agreement = gradient_agreement_report(make, sampler, cfg, workers=WORKERS)
    assert agreement["within_tolerance"], agreement

    serial_s, rs = _timed_fit(make(), sampler, cfg, SerialExecutor())
    parallel_s, rp = _timed_fit(make(), sampler, cfg, ShardedExecutor(WORKERS))
    assert np.isfinite(rp.losses).all()
    assert np.isfinite(rs.losses).all()

    speedup = _speedup_row("transr", serial_s, parallel_s, KG_EPOCHS, agreement)
    _render_table()
    assert speedup >= SPEEDUP_FLOOR, (
        f"TransR {WORKERS}-worker epochs only {speedup:.2f}x faster than serial "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s); gate is {SPEEDUP_FLOOR}x"
    )


def test_parallel_smoke_agreement():
    """Runs on any core count: correctness gates + the JSON artifact.

    Fork-vs-inline loss identity shows the multiprocess plumbing (segment
    arena, slab exchange, round barrier) changes nothing versus the same
    arithmetic run inline; the agreement reports bound the distributed
    gradient against a serial reduction of identical batches.
    """
    data = _interactions(2_000, 400, 40_000, seed=1)
    sampler = ShardedBPRSampler(data, users_per_shard=256)
    cfg = FitConfig(epochs=2, batch_size=1024, seed=3)

    _, inline = _timed_fit(
        BPRMF(2_000, 400, dim=16, seed=1),
        sampler,
        cfg,
        ShardedExecutor(2, parallel=False),
        data,
    )
    fork_s, fork = _timed_fit(
        BPRMF(2_000, 400, dim=16, seed=1), sampler, cfg, ShardedExecutor(2), data
    )
    assert fork.losses == inline.losses, "fork workers must match inline execution exactly"

    bpr_rep = gradient_agreement_report(
        lambda: BPRMF(2_000, 400, dim=16, seed=1), sampler, cfg, workers=2
    )
    assert bpr_rep["within_tolerance"], bpr_rep

    h, r, t = _triples(1_500, 5, 20_000, seed=2)
    kg_sampler = TripleShardSampler(h, r, t, rows_per_shard=2_500)
    kg_rep = gradient_agreement_report(
        lambda: TransRObjective(1_500, 5, entity_dim=16, relation_dim=8, seed=1),
        kg_sampler,
        FitConfig(epochs=1, batch_size=1024, seed=3),
        workers=2,
    )
    assert kg_rep["within_tolerance"], kg_rep

    _RESULTS["smoke"] = {
        "fork_seconds": round(fork_s, 3),
        "bprmf_agreement": {k: bpr_rep[k] for k in ("max_abs_diff", "max_rel_diff", "workers")},
        "transr_agreement": {k: kg_rep[k] for k in ("max_abs_diff", "max_rel_diff", "workers")},
    }
    _flush()
