"""Table I bench: collaborative-knowledge-graph statistics.

Regenerates the paper's Table I (entities / relationships / KG triplets /
link-avg per facility) from the synthetic catalogs and prints measured
values next to the published ones.  Shape criteria: relation counts match
the paper exactly (8 OOI / 7 GAGE); entity and triple counts land in the
same size class.
"""

from conftest import BENCH_SCALE, write_result

from repro.experiments import tables


def test_table1_ckg_statistics(benchmark, ooi_dataset, gage_dataset):
    def run():
        return tables.table1(ooi_dataset, gage_dataset)

    stats, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table1_ckg_stats", text)

    # Hard shape criteria — these are structural, not stochastic.
    assert stats["ooi"].relationships == 8, "paper: 8 OOI relations"
    assert stats["gage"].relationships == 7, "paper: 7 GAGE relations"
    assert stats["gage"].entities > stats["ooi"].entities
    assert stats["gage"].kg_triples > stats["ooi"].kg_triples
    if BENCH_SCALE == "full":
        # Size class: within 2× of the published counts.
        assert 0.5 * 1342 <= stats["ooi"].entities <= 2.0 * 1342
        assert 0.5 * 5554 <= stats["ooi"].kg_triples <= 2.0 * 5554
        assert 0.5 * 4754 <= stats["gage"].entities <= 2.0 * 4754
