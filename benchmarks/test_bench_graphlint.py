"""Graph-lint warm-vs-cold benchmark: the summary cache must pay for itself.

The gate: a warm ``run_graph_lint`` pass over the real ``src/`` tree — every
module summary served from the content-hash cache — must be at least **5×
faster** than the cold pass that parses and summarises every file.  Exactness
rides along: the warm findings are identical to the cold ones, and the warm
pass re-parses nothing (zero cache misses).
"""

import time
from pathlib import Path

from conftest import write_bench_json, write_result

from repro.analysis.lint.graph import DEFAULT_GRAPH_CONFIG, run_graph_lint

SRC = Path(__file__).resolve().parents[1] / "src"
MIN_SPEEDUP = 5.0


def _timed_run(cache_path):
    start = time.perf_counter()
    report = run_graph_lint([SRC], config=DEFAULT_GRAPH_CONFIG, cache_path=cache_path)
    return time.perf_counter() - start, report


def test_warm_graphlint_speedup(tmp_path):
    cache = tmp_path / "lint-cache.json"
    cold_s, cold = _timed_run(cache)
    warm_s, warm = _timed_run(cache)

    assert cold.cache_misses == cold.files_checked and cold.cache_hits == 0
    assert warm.cache_hits == warm.files_checked and warm.cache_misses == 0
    assert warm.findings == cold.findings

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        "graph-lint warm vs cold (src/)",
        f"  files          {cold.files_checked}",
        f"  cold           {cold_s * 1000:8.1f} ms",
        f"  warm           {warm_s * 1000:8.1f} ms",
        f"  speedup        {speedup:8.1f}x   (gate >= {MIN_SPEEDUP}x)",
    ]
    write_result("graphlint_warm_cold", "\n".join(lines))
    write_bench_json(
        "graphlint_warm_cold",
        {
            "files": cold.files_checked,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": speedup,
            "gate": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, f"warm graph-lint only {speedup:.1f}x faster"
