"""Table V bench: embedding-propagation depth L ∈ {1, 2, 3}.

Shape criterion from the paper: deeper CKAT is at least as good as CKAT-1
(high-order connectivity helps), with CKAT-3 the paper's default.
"""

from conftest import write_result

from repro.experiments import tables


def test_table5_propagation_depth(benchmark, ooi_dataset, gage_dataset, ablation_epochs):
    def run():
        return tables.table5(
            datasets=[ooi_dataset, gage_dataset], epochs=ablation_epochs, seed=0
        )

    results, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table5_depth", text)

    report = []
    for ds in ("ooi", "gage"):
        r1 = results[("CKAT-1", ds)].recall
        r2 = results[("CKAT-2", ds)].recall
        r3 = results[("CKAT-3", ds)].recall
        deeper_best = max(r2, r3)
        report.append(
            f"[{ds}] L=1 {r1:.4f}  L=2 {r2:.4f}  L=3 {r3:.4f} "
            f"(depth {'helps' if deeper_best >= r1 else 'did not help'})"
        )
        # Allow small-sample noise: deeper models within 5% of CKAT-1 at worst.
        assert deeper_best >= 0.95 * r1, f"{ds}: depth catastrophically hurt"
    write_result("table5_shape", "\n".join(report))
