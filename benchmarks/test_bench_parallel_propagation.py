"""A2 ablation bench: edge-partitioning strategies for sharded propagation.

Measures the two quantities that decide a distributed CKAT's communication
cost — load balance and entity replication factor — for both partitioning
strategies at several shard counts, and verifies the sharded result is exact.
"""

import numpy as np
from conftest import write_result

from repro.kg import KnowledgeSources
from repro.parallel import partition_edges, sharded_segment_sum
from repro.utils.tables import TextTable


def test_partition_strategies(benchmark, ooi_dataset):
    ckg = ooi_dataset.build_ckg(KnowledgeSources.best())
    store = ckg.propagation_store
    rng = np.random.default_rng(0)
    emb = rng.normal(size=(ckg.num_entities, 64))
    degrees = np.bincount(store.heads, minlength=store.num_entities)
    weights = 1.0 / np.maximum(degrees[store.heads], 1)

    reference = np.zeros_like(emb)
    np.add.at(reference, store.heads, weights[:, None] * emb[store.tails])

    def run():
        rows = []
        for strategy in ("contiguous", "hash"):
            for shards in (2, 4, 8, 16):
                part = partition_edges(store, num_shards=shards, strategy=strategy)
                sharded = sharded_segment_sum(store.heads, store.tails, weights, emb, part)
                err = float(np.abs(sharded - reference).max())
                rows.append(
                    (
                        strategy,
                        shards,
                        err,
                        part.load_balance(),
                        part.replication_factor(store.heads, store.tails),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["strategy", "shards", "max abs error", "load balance", "replication"],
        title="A2: edge-partitioning strategies for sharded CKAT propagation (OOI CKG)",
        float_digits=3,
    )
    for strategy, shards, err, lb, rf in rows:
        table.add_row([strategy, shards, f"{err:.2e}", lb, rf])
    write_result("ablation_partitioning", table.render())

    for strategy, shards, err, lb, rf in rows:
        assert err < 1e-9, "sharded propagation must be exact"
        assert rf >= 1.0
    # Replication grows with shard count for both strategies.
    contiguous = [r for r in rows if r[0] == "contiguous"]
    assert contiguous[-1][4] >= contiguous[0][4]
