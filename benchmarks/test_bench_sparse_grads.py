"""Sparse-row gradient benchmarks: TransR epoch speedup and exactness gates.

The tentpole claim: at facility scale (≥50k entities) an embedding-training
epoch spends almost all its time materializing and consuming dense
table-shaped gradients — ``zeros_like(entity_table)`` per gather backward
plus a full-table optimizer update per step — when a 2048-triple batch only
touches a few thousand rows.  The sparse-row path (``SparseRowGrad``) must
deliver ≥3x on a TransR epoch at that scale while agreeing with the dense
path on small fixtures to rtol=1e-10 (bit-for-bit on batches without
duplicate rows; summation-associativity rounding otherwise).

The exactness tests are named without "speedup" so `-k "not speedup"`
selects a fast CI smoke that skips the 50k-entity timing run.
"""

import time

import numpy as np

from repro.autograd import SGD, Adam, SparseRowGrad, dense_grads
from repro.models.embeddings import TransR

from conftest import write_bench_json, write_result

N_ENT = 50_000
N_REL = 8
DIM = 32
BATCH = 2048
STEPS = 8


def _epoch_batches(rng, n_ent=N_ENT, n_rel=N_REL, steps=STEPS, batch=BATCH):
    return [
        (
            rng.integers(0, n_ent, size=batch),
            rng.integers(0, n_rel, size=batch),
            rng.integers(0, n_ent, size=batch),
        )
        for _ in range(steps)
    ]


def _run_epoch(batches, *, dense, n_ent=N_ENT, n_rel=N_REL, dim=DIM, opt_cls=Adam, lr=0.01):
    """One TransR epoch over pre-sampled batches; returns (seconds, losses)."""
    model = TransR(n_ent, n_rel, entity_dim=dim, relation_dim=dim, seed=0)
    opt = opt_cls(model.parameters(), lr=lr)
    rng = np.random.default_rng(42)  # corruption sampling, identical per run
    ctx = dense_grads() if dense else _null_ctx()
    losses = []
    with ctx:
        t0 = time.perf_counter()
        for h, r, t in batches:
            opt.zero_grad()
            loss = model.margin_loss(h, r, t, rng)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        elapsed = time.perf_counter() - t0
    return elapsed, losses, model


class _null_ctx:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


# ------------------------------------------------------------------ the gate
def test_transr_epoch_speedup():
    """Sparse path ≥3x faster than dense on a 50k-entity TransR epoch."""
    batches = _epoch_batches(np.random.default_rng(7))
    # Warm-up (allocator, caches) on a truncated epoch.
    _run_epoch(batches[:2], dense=False)
    _run_epoch(batches[:2], dense=True)

    t_sparse, losses_sparse, _ = _run_epoch(batches, dense=False)
    t_dense, losses_dense, _ = _run_epoch(batches, dense=True)
    speedup = t_dense / t_sparse
    touched = len(np.unique(np.concatenate([np.r_[h, t] for h, _, t in batches])))
    write_result(
        "bench_sparse_grads",
        f"TransR epoch, {N_ENT} entities x dim {DIM}, {STEPS} steps x batch {BATCH} (Adam)\n"
        f"  rows touched         : {touched} of {N_ENT}\n"
        f"  dense gradients      : {t_dense * 1e3:8.1f} ms\n"
        f"  sparse-row gradients : {t_sparse * 1e3:8.1f} ms  ({speedup:.1f}x)\n"
        f"  first-step loss agreement: {abs(losses_sparse[0] - losses_dense[0]):.2e}",
    )
    write_bench_json(
        "sparse_grads",
        {
            "dense_seconds": t_dense,
            "sparse_seconds": t_sparse,
            "speedup": speedup,
            "gate": 3.0,
            "entities": N_ENT,
            "dim": DIM,
            "rows_touched": int(touched),
        },
    )
    assert np.isfinite(losses_sparse).all() and np.isfinite(losses_dense).all()
    # Step 1 starts from identical params and zero moments, so the losses of
    # the first two steps agree to rounding (lazy Adam only diverges on rows
    # it deliberately leaves untouched).
    assert abs(losses_sparse[0] - losses_dense[0]) < 1e-10
    assert speedup >= 3.0, f"sparse path only {speedup:.2f}x faster than dense"


# ------------------------------------------------------ small-fixture gates
def test_gradients_match_dense_small():
    """Backward emits the same per-parameter gradient either way (rtol 1e-10)."""
    batches = _epoch_batches(np.random.default_rng(3), n_ent=60, n_rel=4, steps=1, batch=64)
    h, r, t = batches[0]

    def grads(dense):
        model = TransR(60, 4, entity_dim=8, relation_dim=8, seed=0)
        rng = np.random.default_rng(5)
        ctx = dense_grads() if dense else _null_ctx()
        with ctx:
            model.margin_loss(h, r, t, rng).backward()
        return [np.asarray(p.grad) for p in model.parameters()]

    for gs, gd in zip(grads(dense=False), grads(dense=True)):
        np.testing.assert_allclose(gs, gd, rtol=1e-10, atol=1e-14)


def test_training_matches_dense_small():
    """A full small-table SGD run lands on the same parameters (rtol 1e-10)."""
    batches = _epoch_batches(np.random.default_rng(11), n_ent=60, n_rel=4, steps=6, batch=64)
    _, losses_s, sparse = _run_epoch(batches, dense=False, n_ent=60, n_rel=4, dim=8, opt_cls=SGD)
    _, losses_d, dense = _run_epoch(batches, dense=True, n_ent=60, n_rel=4, dim=8, opt_cls=SGD)
    np.testing.assert_allclose(losses_s, losses_d, rtol=1e-10)
    for p, q in zip(sparse.parameters(), dense.parameters()):
        np.testing.assert_allclose(p.data, q.data, rtol=1e-10, atol=1e-14)


def test_sparse_path_is_active():
    """The default engine really emits SparseRowGrad for embedding gathers
    (guards against the benchmark silently comparing dense to dense)."""
    model = TransR(60, 4, entity_dim=8, relation_dim=8, seed=0)
    rng = np.random.default_rng(0)
    h, r, t = (rng.integers(0, 60, 16), rng.integers(0, 4, 16), rng.integers(0, 60, 16))
    model.margin_loss(h, r, t, rng).backward()
    assert isinstance(model.entity_emb.grad, SparseRowGrad)
