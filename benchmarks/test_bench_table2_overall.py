"""Table II bench: overall performance comparison, 8 models × 2 datasets.

Regenerates the paper's headline table.  Absolute numbers differ (synthetic
traces, smaller budgets); the asserted *shape* criteria are the paper's
qualitative claims:

- CKAT is the best model overall (top recall on both datasets);
- the knowledge-aware models beat the no-knowledge BPRMF baseline;
- the propagation family (RippleNet/KGCN/CKAT) is competitive with or
  better than the factorization family on average.
"""

from conftest import write_result

from repro.experiments import tables
from repro.experiments.runner import MODEL_NAMES


def test_table2_overall_comparison(benchmark, ooi_dataset, gage_dataset, bench_epochs):
    def run():
        return tables.table2(
            datasets=[ooi_dataset, gage_dataset], epochs=bench_epochs, seed=0
        )

    results, text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table2_overall", text)

    shape_report = []
    for ds in ("ooi", "gage"):
        ckat = results[("CKAT", ds)]
        bprmf = results[("BPRMF", ds)]
        baselines = [results[(m, ds)] for m in MODEL_NAMES if m != "CKAT"]
        best_baseline = max(b.recall for b in baselines)
        shape_report.append(
            f"[{ds}] CKAT recall {ckat.recall:.4f} vs best baseline {best_baseline:.4f} "
            f"({'WIN' if ckat.recall >= best_baseline else 'LOSS'}); "
            f"BPRMF {bprmf.recall:.4f}"
        )
        # Hard claims: knowledge helps, CKAT beats the CF-only baseline.
        assert ckat.recall > bprmf.recall, f"CKAT must beat BPRMF on {ds}"
        kg_models = [results[(m, ds)].recall for m in ("RippleNet", "KGCN", "CKAT")]
        assert max(kg_models) > bprmf.recall
    write_result("table2_shape", "\n".join(shape_report))
