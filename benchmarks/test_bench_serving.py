"""Serving throughput gate: sustained rps, p99 latency, batched bit-identity.

Freezes a BPRMF model at bench scale into a :class:`ScoreIndex`, starts the
asyncio server on an ephemeral port, and drives it with concurrent
keep-alive clients in the same event loop — the single-core worst case,
since server scoring and client load contend for one interpreter.

Gates (full scale):

- ``>= 500`` requests/sec sustained over the timed window;
- p99 request latency ``<= 50 ms`` (client-measured, queueing included);
- every response observed under concurrent load is bit-identical (ids AND
  scores) to single-request scoring against a fresh service.

Emits ``BENCH_serving.json`` next to the other benchmark gate artifacts.
"""

import asyncio
import time

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, write_bench_json, write_result
from repro.models import BPRMF
from repro.models.base import FitConfig
from repro.serving import RecommendServer, RecommendService, ScoreIndex, ServingClient

GATE_RPS = 500.0
GATE_P99_SECONDS = 0.050

NUM_CLIENTS = 8
WARMUP_REQUESTS = 200
TIMED_REQUESTS = 4000
REQUEST_K = 10
FREEZE_EPOCHS = 2  # serving cost is independent of model quality


def _freeze_index(ooi_dataset):
    train = ooi_dataset.split.train
    model = BPRMF(train.num_users, train.num_items, dim=64, seed=BENCH_SEED)
    model.fit(train, FitConfig(epochs=FREEZE_EPOCHS, batch_size=512, seed=BENCH_SEED))
    return ScoreIndex.from_model(model, train)


async def _drive(index):
    service = RecommendService(index)
    server = RecommendServer(service, port=0, max_batch=64)
    host, port = await server.start()
    clients = [await ServingClient(host, port).connect() for _ in range(NUM_CLIENTS)]
    num_users = index.num_users
    latencies = np.empty(TIMED_REQUESTS, dtype=np.float64)
    observed = {}

    async def run_client(worker, count, offset, timed):
        for i in range(count):
            user = (offset + i * 13 + worker * 131) % num_users
            start = time.perf_counter()
            status, body = await clients[worker].recommend(user=user, k=REQUEST_K)
            elapsed = time.perf_counter() - start
            assert status == 200, body
            if timed:
                latencies[offset + i] = elapsed
                observed[user] = body

    # Warmup: populate the LRU cache and let the loop settle.
    per_warm = WARMUP_REQUESTS // NUM_CLIENTS
    await asyncio.gather(
        *[run_client(w, per_warm, w * per_warm, False) for w in range(NUM_CLIENTS)]
    )
    per_client = TIMED_REQUESTS // NUM_CLIENTS
    wall_start = time.perf_counter()
    await asyncio.gather(
        *[run_client(w, per_client, w * per_client, True) for w in range(NUM_CLIENTS)]
    )
    wall = time.perf_counter() - wall_start
    for client in clients:
        await client.close()
    await server.stop()
    return wall, latencies, observed, service.stats()


def test_bench_serving_throughput(ooi_dataset):
    index = _freeze_index(ooi_dataset)
    wall, latencies, observed, stats = asyncio.run(_drive(index))

    rps = TIMED_REQUESTS / wall
    p50, p99 = np.percentile(latencies, [50, 99])
    mean_batch = TIMED_REQUESTS / max(stats["batches"] - 0, 1)

    # Bit-identity: every response captured under concurrent load must equal
    # single-request scoring on a fresh service over the same frozen index.
    fresh = RecommendService(index)
    mismatches = 0
    for user, body in observed.items():
        expect = fresh.recommend_one({"user": int(user), "k": REQUEST_K})
        if body["items"] != expect["items"] or body["scores"] != expect["scores"]:
            mismatches += 1
    assert mismatches == 0, f"{mismatches}/{len(observed)} responses diverged"

    lines = [
        f"serving throughput (scale={BENCH_SCALE}, {index.num_users} users x "
        f"{index.num_items} items, dim={index.dim}, k={REQUEST_K})",
        f"requests: {TIMED_REQUESTS} over {NUM_CLIENTS} keep-alive connections",
        f"wall: {wall:.2f}s  ->  {rps:.0f} req/s "
        f"(gate >= {GATE_RPS:.0f})",
        f"latency: p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms "
        f"(gate <= {GATE_P99_SECONDS * 1e3:.0f} ms)",
        f"micro-batching: {stats['batches']} batches, mean {mean_batch:.1f} "
        f"req/batch, max {stats['max_batch']}",
        f"user-vector cache: {stats['user_cache']['hits']} hits / "
        f"{stats['user_cache']['misses']} misses",
        f"bit-identity: {len(observed)} users batched == single",
    ]
    write_result("serving", "\n".join(lines))
    write_bench_json(
        "serving",
        {
            "requests": TIMED_REQUESTS,
            "clients": NUM_CLIENTS,
            "k": REQUEST_K,
            "wall_seconds": wall,
            "requests_per_second": rps,
            "latency_p50_seconds": float(p50),
            "latency_p99_seconds": float(p99),
            "batches": stats["batches"],
            "mean_batch": mean_batch,
            "max_batch": stats["max_batch"],
            "cache": stats["user_cache"],
            "bit_identical_users": len(observed),
            "gate_rps": GATE_RPS,
            "gate_p99_seconds": GATE_P99_SECONDS,
        },
    )
    if BENCH_SCALE == "full":
        assert rps >= GATE_RPS, f"throughput gate: {rps:.0f} < {GATE_RPS} req/s"
        assert p99 <= GATE_P99_SECONDS, (
            f"latency gate: p99 {p99 * 1e3:.1f} ms > {GATE_P99_SECONDS * 1e3:.0f} ms"
        )
